"""Experiment plumbing: setups, reporting, result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import clear_cache, run_cached
from repro.experiments.reporting import (
    fmt_speedup,
    fmt_time,
    print_series,
    print_table,
)
from repro.experiments.setups import (
    BENCH_TASKS,
    METHOD_ORDER,
    bench_scale,
    make_bench_task,
    make_devices,
)


def test_bench_tasks_cover_all_paper_workloads():
    assert set(BENCH_TASKS) == {"cnn", "alexnet", "vgg19", "resnet50", "lstm"}


def test_method_order_matches_paper_columns():
    assert METHOD_ORDER == ["synfl", "upfl", "fedprox", "flexcom", "fedmp"]


def test_make_bench_task_unknown():
    with pytest.raises(KeyError):
        make_bench_task("transformer")


def test_bench_task_builds_runnable_pieces(rng):
    bench_task = make_bench_task("cnn")
    task = bench_task.make_task()
    model = task.build_model(rng)
    assert model.num_parameters() > 0
    config = bench_task.make_config("fedmp", max_rounds=3)
    assert config.max_rounds == 3
    assert config.strategy == "fedmp"
    assert config.strategy_kwargs  # bandit kwargs applied


def test_bench_task_bandit_kwargs_only_for_bandit_strategies():
    bench_task = make_bench_task("cnn")
    assert bench_task.make_config("synfl").strategy_kwargs == {}
    assert "max_ratio" in bench_task.make_config("upfl").strategy_kwargs


def test_bench_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
    assert bench_scale() == 2.5
    bench_task = make_bench_task("cnn")
    assert bench_task.make_config("synfl").max_rounds == round(
        bench_task.max_rounds * 2.5
    )


def test_make_devices_count_composition():
    devices = make_devices(seed=1, count=20)
    assert len(devices) == 20
    clusters = sorted(d.cluster for d in devices)
    assert clusters.count("A") == 10
    assert clusters.count("B") == 10


def test_run_cached_computes_once():
    clear_cache()
    calls = []

    def factory():
        calls.append(1)
        return 42

    assert run_cached("k", factory) == 42
    assert run_cached("k", factory) == 42
    assert len(calls) == 1
    clear_cache()


def test_print_table_and_series_smoke(capsys):
    print_table("Title", ["A", "B"], [["1", "2"], ["3", "4"]], note="n")
    print_series("S", {"m": [(1.0, 0.5), (2.0, 0.7)]})
    out = capsys.readouterr().out
    assert "Title" in out
    assert "(1, 0.500)" in out


def test_formatters():
    assert fmt_time(12.3) == "12s"
    assert fmt_time(None) == "--"
    assert fmt_speedup(10.0, 5.0) == "2.00x"
    assert fmt_speedup(None, 5.0) == "--"
    assert fmt_speedup(10.0, None) == "--"


def test_run_cached_keys_are_independent():
    clear_cache()
    assert run_cached("a", lambda: 1) == 1
    assert run_cached("b", lambda: 2) == 2
    # a later factory for a cached key is never invoked
    assert run_cached("a", lambda: pytest.fail("cache miss")) == 1
    clear_cache()


def test_clear_cache_forces_recompute():
    clear_cache()
    calls = []

    def factory():
        calls.append(1)
        return len(calls)

    assert run_cached("k", factory) == 1
    clear_cache()
    assert run_cached("k", factory) == 2
    clear_cache()


def test_print_table_without_rows(capsys):
    print_table("Empty", ["col_a", "col_b"], [])
    out = capsys.readouterr().out
    assert "Empty" in out
    assert "col_a" in out


def test_print_series_subsamples_long_series(capsys):
    points = [(float(i), float(i) / 100.0) for i in range(100)]
    print_series("Long", {"m": points}, max_points=5)
    out = capsys.readouterr().out
    # subsampled, but the final point always survives
    assert out.count("(") < len(points)
    assert "(99, 0.990)" in out


def test_print_metrics_summary_renders_instruments(capsys):
    from repro.experiments.reporting import print_metrics_summary
    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry(enabled=True)
    registry.counter("rounds_total", strategy="fedmp").inc(3)
    histogram = registry.histogram("round_time_s")
    for value in (0.5, 1.0, 2.0):
        histogram.observe(value)
    print_metrics_summary(registry)
    out = capsys.readouterr().out
    assert "telemetry: counters" in out
    assert "rounds_total{strategy=fedmp}" in out
    assert "telemetry: histograms" in out
    assert "round_time_s" in out


def test_print_metrics_summary_empty_registry_prints_nothing(capsys):
    from repro.experiments.reporting import print_metrics_summary
    from repro.telemetry import MetricsRegistry

    print_metrics_summary(MetricsRegistry(enabled=True))
    assert capsys.readouterr().out == ""


def test_print_profile_summary_renders_layers(capsys):
    from repro.experiments.reporting import print_profile_summary

    class _Profiler:
        worker_id = 3
        total_s = 1.5

        def summary(self):
            return [
                {"name": "conv1", "layer_type": "Conv2D",
                 "forward_calls": 4, "forward_s": 0.25,
                 "backward_s": 0.5, "total_flops": 2e6},
                {"name": "fc", "layer_type": "Linear",
                 "forward_calls": 4, "forward_s": 0.1,
                 "backward_s": 0.2, "total_flops": None},
            ]

    print_profile_summary(_Profiler())
    out = capsys.readouterr().out
    assert "(worker 3)" in out
    assert "conv1" in out
    assert "2.00M" in out
    assert "--" in out          # missing FLOPs render as placeholder
    assert "total instrumented time 1.500s" in out


def test_print_profile_summary_without_layers(capsys):
    from repro.experiments.reporting import print_profile_summary

    class _Empty:
        worker_id = None
        total_s = 0.0

        def summary(self):
            return []

    print_profile_summary(_Empty())
    assert "no layers recorded" in capsys.readouterr().out


def test_fmt_speedup_zero_denominator():
    assert fmt_speedup(10.0, 0.0) == "--"
