"""Residual-model quantization (Section III-C memory optimisation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_cnn
from repro.pruning import build_pruning_plan, residual_state_dict
from repro.pruning.quantize import (
    QuantizedState,
    quantization_error,
    quantize_state_dict,
    residual_memory_ratio,
    state_memory_bytes,
)


@pytest.fixture
def residual(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.5)
    return residual_state_dict(model.state_dict(), plan), model.state_dict()


def test_roundtrip_error_bounded_by_half_step(rng):
    state = {"w": rng.normal(size=(32, 16)).astype(np.float64)}
    quantized = quantize_state_dict(state, bits=8)
    scale = quantized.scales["w"]
    assert quantization_error(state, quantized) <= scale / 2 + 1e-12


def test_zeros_preserved_exactly(residual):
    residual_state, _ = residual
    quantized = quantize_state_dict(residual_state, bits=6)
    restored = quantized.dequantize()
    for key, value in residual_state.items():
        zero_mask = value == 0.0
        assert np.all(restored[key][zero_mask] == 0.0), key


def test_memory_shrinks_with_bits(residual):
    residual_state, _ = residual
    sizes = [
        quantize_state_dict(residual_state, bits=b).memory_bytes()
        for b in (4, 8, 16)
    ]
    assert sizes[0] < sizes[1] < sizes[2]
    assert sizes[1] < state_memory_bytes(residual_state)


def test_residual_memory_ratio_matches_paper_band(residual):
    """The paper quotes 10-20% of the original model for quantized
    residuals; 4-6 bits land exactly in that band (bits/32)."""
    residual_state, global_state = residual
    dense, quantized = residual_memory_ratio(residual_state, global_state,
                                             bits=5)
    assert dense == pytest.approx(1.0, rel=0.01)
    assert 0.10 <= quantized <= 0.20


def test_bits_validation(residual):
    residual_state, _ = residual
    with pytest.raises(ValueError):
        quantize_state_dict(residual_state, bits=1)
    with pytest.raises(ValueError):
        quantize_state_dict(residual_state, bits=32)


def test_error_decreases_with_bits(rng):
    state = {"w": rng.normal(size=(64,))}
    errors = [
        quantization_error(state, quantize_state_dict(state, bits=b))
        for b in (3, 6, 12)
    ]
    assert errors[0] > errors[1] > errors[2]


def test_empty_state():
    quantized = quantize_state_dict({}, bits=8)
    assert isinstance(quantized, QuantizedState)
    assert quantization_error({}, quantized) == 0.0
