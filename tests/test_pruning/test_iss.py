"""ISS pruning of the LSTM language model (Section VI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_lstm_lm
from repro.pruning import (
    build_iss_plan,
    extract_iss_submodel,
    recover_state_dict,
    sparse_state_dict,
)
from repro.pruning.plan import keep_count


@pytest.fixture
def lm(rng):
    return build_lstm_lm(vocab_size=60, embedding_dim=12, hidden_size=16,
                         rng=rng)


@pytest.mark.parametrize("ratio", [0.0, 0.25, 0.5, 0.8])
def test_iss_recovery_equals_sparse(rng, lm, ratio):
    plan = build_iss_plan(lm, ratio)
    sub = extract_iss_submodel(lm, plan, rng=rng)
    recovered = recover_state_dict(sub.state_dict(), plan, lm.state_dict())
    sparse = sparse_state_dict(lm.state_dict(), plan)
    for key in sparse:
        assert np.allclose(recovered[key], sparse[key]), key


def test_iss_hidden_sizes_shrink_consistently(rng, lm):
    plan = build_iss_plan(lm, 0.5)
    sub = extract_iss_submodel(lm, plan, rng=rng)
    lstm1, lstm2 = sub.get("lstm1"), sub.get("lstm2")
    assert lstm1.hidden_size == keep_count(16, 0.5)
    assert lstm2.input_size == lstm1.hidden_size
    assert sub.get("decoder").linear.in_features == lstm2.hidden_size


def test_iss_submodel_runs_end_to_end(rng, lm):
    plan = build_iss_plan(lm, 0.5)
    sub = extract_iss_submodel(lm, plan, rng=rng)
    ids = rng.integers(0, 60, size=(5, 3))
    out = sub.forward(ids)
    assert out.shape == (5, 3, 60)
    sub.zero_grad()
    sub.backward(np.ones_like(out) / out.size)


def test_iss_vocabulary_never_pruned(rng, lm):
    plan = build_iss_plan(lm, 0.8)
    entry = plan["decoder.linear"]
    assert entry.kept_out.size == 60


def test_iss_gate_rows_selected_coherently(rng, lm):
    """A kept unit keeps its rows in all four gate blocks of w_ih."""
    plan = build_iss_plan(lm, 0.5)
    sub = extract_iss_submodel(lm, plan, rng=rng)
    entry = plan["lstm1"]
    hidden_full = 16
    hidden_sub = entry.kept_out.size
    src = lm.get("lstm1").params["w_ih"]
    dst = sub.get("lstm1").params["w_ih"]
    for gate in range(4):
        for sub_row, full_unit in enumerate(entry.kept_out):
            assert np.allclose(
                dst[gate * hidden_sub + sub_row],
                src[gate * hidden_full + full_unit],
            )


def test_iss_param_reduction(rng, lm):
    full = lm.num_parameters()
    sub = extract_iss_submodel(lm, build_iss_plan(lm, 0.6), rng=rng)
    assert sub.num_parameters() < full


def test_iss_identity_plan(rng, lm):
    plan = build_iss_plan(lm, 0.0)
    sub = extract_iss_submodel(lm, plan, rng=rng)
    ids = rng.integers(0, 60, size=(4, 2))
    assert np.allclose(lm.forward(ids), sub.forward(ids), atol=1e-5)
