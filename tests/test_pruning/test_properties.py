"""Hypothesis property tests on the pruning invariants.

These exercise the recovery/sparse/residual identities over random
ratios and random weight contents -- the invariants R2SP's convergence
argument rests on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import build_cnn
from repro.pruning import (
    build_pruning_plan,
    extract_submodel,
    pruning_error,
    recover_state_dict,
    residual_state_dict,
    sparse_state_dict,
)
from repro.pruning.importance import top_indices
from repro.pruning.plan import keep_count

ratios = st.floats(min_value=0.0, max_value=0.95, allow_nan=False)


def _small_model(seed: int):
    return build_cnn(rng=np.random.default_rng(seed))


@settings(max_examples=15, deadline=None)
@given(ratio=ratios, seed=st.integers(0, 2 ** 16))
def test_recovery_identity_property(ratio, seed):
    model = _small_model(seed)
    plan = build_pruning_plan(model, ratio)
    sub = extract_submodel(model, plan, rng=np.random.default_rng(seed))
    recovered = recover_state_dict(sub.state_dict(), plan, model.state_dict())
    sparse = sparse_state_dict(model.state_dict(), plan)
    for key in sparse:
        assert np.allclose(recovered[key], sparse[key])


@settings(max_examples=15, deadline=None)
@given(ratio=ratios, seed=st.integers(0, 2 ** 16))
def test_sparse_plus_residual_property(ratio, seed):
    model = _small_model(seed)
    state = model.state_dict()
    plan = build_pruning_plan(model, ratio)
    sparse = sparse_state_dict(state, plan)
    residual = residual_state_dict(state, plan)
    for key in state:
        assert np.allclose(sparse[key] + residual[key], state[key])


@settings(max_examples=15, deadline=None)
@given(ratio=ratios, seed=st.integers(0, 2 ** 16))
def test_pruning_error_nonnegative_and_bounded(ratio, seed):
    model = _small_model(seed)
    state = model.state_dict()
    error = pruning_error(state, build_pruning_plan(model, ratio))
    norm = sum(float((value ** 2).sum()) for value in state.values())
    assert 0.0 <= error <= norm + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    full=st.integers(min_value=1, max_value=512),
    ratio=ratios,
)
def test_keep_count_properties(full, ratio):
    kept = keep_count(full, ratio)
    assert 1 <= kept <= full
    # removing at most the floor(ratio * full) units
    assert full - kept <= int(np.floor(full * ratio))


@settings(max_examples=30, deadline=None)
@given(
    scores=st.lists(
        st.floats(min_value=-1e3, max_value=1e3,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=64,
    ),
    keep_fraction=st.floats(min_value=0.01, max_value=1.0),
)
def test_top_indices_properties(scores, keep_fraction):
    scores = np.asarray(scores)
    keep = max(1, int(len(scores) * keep_fraction))
    picked = top_indices(scores, keep)
    assert picked.size == min(keep, scores.size)
    assert np.all(np.diff(picked) > 0)  # sorted, unique
    # every kept score >= every dropped score
    dropped = np.setdiff1d(np.arange(scores.size), picked)
    if dropped.size and picked.size:
        assert scores[picked].min() >= scores[dropped].max() - 1e-9
