"""Sparse / residual models and the R2SP aggregation identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_cnn
from repro.pruning import (
    build_pruning_plan,
    extract_submodel,
    recover_state_dict,
    residual_state_dict,
    sparse_state_dict,
)


@pytest.fixture
def model_and_plan(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.5)
    return model, plan


def test_sparse_zeroes_exactly_the_pruned_positions(model_and_plan):
    model, plan = model_and_plan
    sparse = sparse_state_dict(model.state_dict(), plan)
    entry = plan["conv1"]
    weight = sparse["conv1.weight"]
    pruned = entry.out_pruned
    assert np.all(weight[pruned] == 0.0)
    assert np.allclose(
        weight[entry.kept_out], model.get("conv1").params["weight"][entry.kept_out]
    )


def test_residual_plus_sparse_equals_global(model_and_plan):
    model, plan = model_and_plan
    state = model.state_dict()
    sparse = sparse_state_dict(state, plan)
    residual = residual_state_dict(state, plan)
    for key in state:
        assert np.allclose(sparse[key] + residual[key], state[key]), key


def test_residual_zero_on_kept_positions(model_and_plan):
    model, plan = model_and_plan
    residual = residual_state_dict(model.state_dict(), plan)
    entry = plan["conv1"]
    assert np.all(residual["conv1.bias"][entry.kept_out] == 0.0)
    assert np.all(
        residual["conv1.bias"][entry.out_pruned]
        == model.get("conv1").params["bias"][entry.out_pruned]
    )


def test_r2sp_identity_recovered_plus_residual(rng, model_and_plan):
    """recovered(sub) + residual == global at dispatch time.

    This is the invariant that makes R2SP keep 'a rather complete model
    structure': untrained (pruned) positions carry the old global value.
    """
    model, plan = model_and_plan
    state = model.state_dict()
    sub = extract_submodel(model, plan, rng=rng)
    recovered = recover_state_dict(sub.state_dict(), plan, state)
    residual = residual_state_dict(state, plan)
    for key in state:
        assert np.allclose(recovered[key] + residual[key], state[key]), key


def test_identity_plan_sparse_is_noop(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.0)
    sparse = sparse_state_dict(model.state_dict(), plan)
    for key, value in model.state_dict().items():
        assert np.allclose(sparse[key], value)
    residual = residual_state_dict(model.state_dict(), plan)
    for value in residual.values():
        assert np.all(value == 0.0)
