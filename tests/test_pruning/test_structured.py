"""Structured pruning: plans, extraction, recovery, R2SP identities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_alexnet, build_cnn, build_resnet50, build_vgg19
from repro.pruning import (
    build_pruning_plan,
    extract_submodel,
    recover_state_dict,
    sparse_state_dict,
)
from repro.pruning.plan import keep_count

MODEL_CASES = [
    ("cnn", lambda rng: build_cnn(rng=rng), (1, 28, 28)),
    ("alexnet",
     lambda rng: build_alexnet(width_mult=0.125, rng=rng), (3, 32, 32)),
    ("vgg19",
     lambda rng: build_vgg19(width_mult=0.0625, rng=rng), (1, 28, 28)),
    ("resnet50",
     lambda rng: build_resnet50(width_mult=0.125, blocks_per_stage=(1, 1, 1, 1),
                                rng=rng), (3, 64, 64)),
]


@pytest.mark.parametrize("name,builder,shape", MODEL_CASES)
@pytest.mark.parametrize("ratio", [0.0, 0.3, 0.7])
def test_recovery_equals_sparse_model(rng, name, builder, shape, ratio):
    """recover(extract(model)) must reproduce the sparse model exactly."""
    model = builder(rng)
    plan = build_pruning_plan(model, ratio)
    sub = extract_submodel(model, plan, rng=rng)
    recovered = recover_state_dict(sub.state_dict(), plan, model.state_dict())
    sparse = sparse_state_dict(model.state_dict(), plan)
    for key in sparse:
        assert np.allclose(recovered[key], sparse[key]), (name, ratio, key)


@pytest.mark.parametrize("name,builder,shape", MODEL_CASES)
def test_submodel_forward_backward(rng, name, builder, shape):
    model = builder(rng)
    plan = build_pruning_plan(model, 0.5)
    sub = extract_submodel(model, plan, rng=rng)
    x = rng.normal(size=(2,) + shape).astype(np.float32)
    out = sub.forward(x)
    assert out.shape[0] == 2
    sub.zero_grad()
    sub.backward(np.ones_like(out) / out.size)


@pytest.mark.parametrize("name,builder,shape", MODEL_CASES)
def test_parameter_reduction_monotone(rng, name, builder, shape):
    model = builder(rng)
    previous = model.num_parameters() + 1
    for ratio in (0.0, 0.25, 0.5, 0.75):
        sub = extract_submodel(model, build_pruning_plan(model, ratio),
                               rng=rng)
        assert sub.num_parameters() < previous
        previous = sub.num_parameters()


def test_zero_ratio_submodel_is_functionally_identical(rng):
    model = build_cnn(rng=rng)
    model.eval()
    plan = build_pruning_plan(model, 0.0)
    assert plan.is_identity()
    sub = extract_submodel(model, plan, rng=rng)
    sub.eval()
    x = rng.normal(size=(3, 1, 28, 28)).astype(np.float32)
    assert np.allclose(model.forward(x), sub.forward(x), atol=1e-5)


def test_output_layer_never_pruned(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.8)
    assert plan["fc2"].kept_out.size == 10


def test_kept_counts_match_formula(rng):
    model = build_cnn(rng=rng)
    ratio = 0.4
    plan = build_pruning_plan(model, ratio)
    assert plan["conv1"].kept_out.size == keep_count(32, ratio)
    assert plan["conv2"].kept_out.size == keep_count(64, ratio)
    assert plan["fc1"].kept_out.size == keep_count(256, ratio)


def test_next_layer_inputs_follow_pruned_channels(rng):
    """Channels removed from conv1 must disappear from conv2's inputs."""
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.5)
    assert np.array_equal(plan["conv2"].kept_in, plan["conv1"].kept_out)


def test_flatten_expansion_maps_channels_to_features(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.5)
    kept_channels = plan["conv2"].kept_out
    area = 7 * 7  # 28 -> 14 -> 7 after two 2x2 pools
    expected = (kept_channels[:, None] * area + np.arange(area)).reshape(-1)
    assert np.array_equal(plan["fc1"].kept_in, expected)


def test_pruned_weights_are_the_top_l1_filters(rng):
    model = build_cnn(rng=rng)
    conv1 = model.get("conv1")
    scores = np.abs(conv1.params["weight"]).sum(axis=(1, 2, 3))
    plan = build_pruning_plan(model, 0.5)
    expected = np.sort(np.argsort(-scores, kind="stable")[:16])
    assert np.array_equal(plan["conv1"].kept_out, expected)


def test_extracted_weights_match_source_slices(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.5)
    sub = extract_submodel(model, plan, rng=rng)
    entry = plan["conv2"]
    expected = model.get("conv2").params["weight"][
        np.ix_(entry.kept_out, entry.kept_in)
    ]
    assert np.allclose(sub.get("conv2").params["weight"], expected)


def test_resnet_block_boundaries_unpruned(rng):
    model = build_resnet50(width_mult=0.125, blocks_per_stage=(1, 1, 1, 1),
                           rng=rng)
    plan = build_pruning_plan(model, 0.6)
    entry = plan["stage1_block1.conv3"]
    assert entry.kept_out.size == entry.out_full
    proj = plan["stage1_block1.downsample.conv"]
    assert proj.kept_out.size == proj.out_full


def test_bn_follows_conv(rng):
    model = build_vgg19(width_mult=0.0625, rng=rng)
    plan = build_pruning_plan(model, 0.5)
    assert np.array_equal(plan["bn1_1"].kept_out, plan["conv1_1"].kept_out)


def test_plan_requires_input_shape(rng):
    from repro.nn.layers import Linear
    from repro.nn.module import Sequential

    model = Sequential(("fc", Linear(4, 2, rng=rng)))
    with pytest.raises(ValueError, match="input_shape"):
        build_pruning_plan(model, 0.5)


def test_recover_rejects_shape_drift_on_unplanned_entries(rng):
    """Entries the plan does not cover are copied through and must keep
    their shape exactly."""
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.0)
    template = model.state_dict()
    template["extra.bias"] = np.zeros(4)
    sub_state = model.state_dict()
    sub_state["extra.bias"] = np.zeros(7)  # drifted shape
    with pytest.raises(ValueError, match="extra.bias"):
        recover_state_dict(sub_state, plan, template)
