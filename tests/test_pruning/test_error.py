"""Pruning error Q_n^k (Theorem 1's key quantity)."""

from __future__ import annotations

import numpy as np

from repro.models import build_cnn
from repro.pruning import build_pruning_plan, pruning_error
from repro.pruning.error import relative_pruning_error


def test_error_zero_at_ratio_zero(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.0)
    assert pruning_error(model.state_dict(), plan) == 0.0


def test_error_monotone_in_ratio(rng):
    """More pruning -> larger Q (the trade-off Theorem 1 formalises)."""
    model = build_cnn(rng=rng)
    previous = -1.0
    for ratio in (0.1, 0.3, 0.5, 0.7, 0.9):
        error = pruning_error(
            model.state_dict(), build_pruning_plan(model, ratio)
        )
        assert error > previous
        previous = error


def test_error_equals_sum_of_pruned_squares(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.5)
    state = model.state_dict()
    error = pruning_error(state, plan)
    norm = sum(float((value ** 2).sum()) for value in state.values())
    from repro.pruning.masks import sparse_state_dict

    sparse_norm = sum(
        float((value ** 2).sum())
        for value in sparse_state_dict(state, plan).values()
    )
    assert np.isclose(error, norm - sparse_norm, rtol=1e-5)


def test_relative_error_in_unit_interval(rng):
    model = build_cnn(rng=rng)
    plan = build_pruning_plan(model, 0.6)
    rel = relative_pruning_error(model.state_dict(), plan)
    assert 0.0 < rel < 1.0


def test_relative_error_zero_norm():
    from repro.pruning.plan import PruningPlan

    assert relative_pruning_error({}, PruningPlan(ratio=0.5)) == 0.0
