"""PruningPlan bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pruning.plan import LayerPrune, PruningPlan, keep_count


def test_keep_count_bounds():
    assert keep_count(10, 0.0) == 10
    assert keep_count(10, 0.25) == 8
    assert keep_count(10, 0.95) == 1
    assert keep_count(1, 0.9) == 1


def test_keep_count_rejects_out_of_range():
    with pytest.raises(ValueError):
        keep_count(10, 1.0)
    with pytest.raises(ValueError):
        keep_count(10, -0.1)


def test_layer_prune_out_pruned_complement():
    entry = LayerPrune(kind="conv", kept_out=np.array([0, 2]), out_full=4,
                       kept_in=np.array([0]), in_full=1)
    assert entry.out_pruned.tolist() == [1, 3]


def test_layer_prune_keeps_everything():
    entry = LayerPrune(kind="bn", kept_out=np.arange(3), out_full=3)
    assert entry.keeps_everything()
    entry = LayerPrune(kind="bn", kept_out=np.array([0]), out_full=3)
    assert not entry.keeps_everything()


def test_layer_prune_rejects_unknown_kind():
    with pytest.raises(ValueError):
        LayerPrune(kind="attention", kept_out=np.array([0]), out_full=1)


def test_plan_duplicate_entry_raises():
    plan = PruningPlan(ratio=0.5)
    entry = LayerPrune(kind="bn", kept_out=np.arange(2), out_full=2)
    plan.add("bn1", entry)
    with pytest.raises(ValueError):
        plan.add("bn1", entry)


def test_plan_lookup_and_contains():
    plan = PruningPlan(ratio=0.3)
    entry = LayerPrune(kind="bn", kept_out=np.arange(2), out_full=2)
    plan.add("bn1", entry)
    assert "bn1" in plan
    assert plan["bn1"] is entry
    assert plan.get("missing") is None


def test_plan_is_identity():
    plan = PruningPlan(ratio=0.0)
    plan.add("bn1", LayerPrune(kind="bn", kept_out=np.arange(2), out_full=2))
    assert plan.is_identity()
    plan.add("bn2", LayerPrune(kind="bn", kept_out=np.array([0]), out_full=2))
    assert not plan.is_identity()
