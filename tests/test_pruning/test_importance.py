"""l1 importance scores and top-index selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pruning.importance import (
    conv_filter_scores,
    linear_neuron_scores,
    lstm_iss_scores,
    top_indices,
)


def test_conv_filter_scores_sum_abs_kernel():
    weight = np.zeros((2, 1, 2, 2))
    weight[0] = 1.0
    weight[1] = -2.0
    assert np.allclose(conv_filter_scores(weight), [4.0, 8.0])


def test_conv_filter_scores_rejects_wrong_ndim():
    with pytest.raises(ValueError):
        conv_filter_scores(np.zeros((2, 3)))


def test_linear_neuron_scores_rows():
    weight = np.array([[1.0, -1.0], [3.0, 0.0]])
    assert np.allclose(linear_neuron_scores(weight), [2.0, 3.0])


def test_linear_neuron_scores_rejects_wrong_ndim():
    with pytest.raises(ValueError):
        linear_neuron_scores(np.zeros((2, 3, 4)))


def test_lstm_iss_scores_cover_rows_and_column():
    hidden = 2
    w_ih = np.zeros((4 * hidden, 3))
    w_hh = np.zeros((4 * hidden, hidden))
    # give unit 0 weight mass in every gate block row of w_ih
    for gate in range(4):
        w_ih[gate * hidden + 0, :] = 1.0
    # put mass in unit 1's recurrent column; this also shows up in the
    # w_hh *rows* of both units (each row crosses every column)
    w_hh[:, 1] = 2.0
    scores = lstm_iss_scores(w_ih, w_hh)
    # unit 0: 12 from its w_ih rows + 4 gate rows of w_hh crossing col 1
    assert scores[0] == pytest.approx(12 + 4 * 2.0)
    # unit 1: 4 gate rows crossing col 1 (8) + its own column (8 * 2)
    assert scores[1] == pytest.approx(8 + 16)


def test_lstm_iss_scores_shape_check():
    with pytest.raises(ValueError):
        lstm_iss_scores(np.zeros((7, 3)), np.zeros((8, 2)))


def test_top_indices_selects_highest_and_sorts():
    scores = np.array([0.1, 5.0, 3.0, 4.0])
    assert top_indices(scores, 2).tolist() == [1, 3]


def test_top_indices_keep_all():
    scores = np.array([1.0, 2.0])
    assert top_indices(scores, 5).tolist() == [0, 1]


def test_top_indices_tie_break_stable():
    scores = np.array([1.0, 1.0, 1.0])
    assert top_indices(scores, 2).tolist() == [0, 1]


def test_top_indices_rejects_zero_keep():
    with pytest.raises(ValueError):
        top_indices(np.array([1.0]), 0)
