"""Discrete-arm UCB baseline (the policy E-UCB extends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandit.discrete import DiscreteUCBAgent


def test_plays_every_arm_before_repeating():
    agent = DiscreteUCBAgent([0.0, 0.3, 0.6], rng=np.random.default_rng(0))
    played = []
    for _ in range(3):
        played.append(agent.select_arm())
        agent.observe(1.0)
    assert sorted(played) == [0.0, 0.3, 0.6]


def test_converges_to_best_arm():
    arms = [0.0, 0.2, 0.4, 0.6, 0.8]
    agent = DiscreteUCBAgent(arms, discount=0.99, exploration=0.3,
                             rng=np.random.default_rng(1))
    reward = lambda a: 1.0 - 4.0 * (a - 0.4) ** 2
    noise = np.random.default_rng(2)
    picks = []
    for _ in range(200):
        arm = agent.select_arm()
        picks.append(arm)
        agent.observe(reward(arm) + noise.normal(0, 0.02))
    late = picks[-50:]
    assert late.count(0.4) > len(late) / 2


def test_pending_protocol():
    agent = DiscreteUCBAgent([0.1, 0.5])
    agent.select_arm()
    with pytest.raises(RuntimeError):
        agent.select_arm()
    agent.abandon()
    agent.select_arm()
    agent.observe(0.0)
    assert agent.rounds_played == 1
    with pytest.raises(RuntimeError):
        agent.observe(0.0)


def test_validation():
    with pytest.raises(ValueError):
        DiscreteUCBAgent([])
    with pytest.raises(ValueError):
        DiscreteUCBAgent([0.5], discount=1.0)
