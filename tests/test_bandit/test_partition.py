"""Arm-space partition behaviour."""

from __future__ import annotations

import pytest

from repro.bandit.partition import Partition, Region


def test_region_validation():
    with pytest.raises(ValueError):
        Region(0.5, 0.5)
    with pytest.raises(ValueError):
        Region(-0.1, 0.5)
    with pytest.raises(ValueError):
        Region(0.2, 1.1)


def test_region_membership():
    region = Region(0.2, 0.4)
    assert region.contains(0.2)
    assert region.contains(0.39)
    assert not region.contains(0.4)
    assert region.diameter == pytest.approx(0.2)


def test_initial_partition_covers_arm_space():
    partition = Partition(0.0, 0.9)
    assert len(partition) == 1
    assert partition.find(0.0).low == 0.0
    assert partition.find(0.89).high == 0.9


def test_split_replaces_leaf_in_place():
    partition = Partition(0.0, 1.0)
    region = partition.find(0.5)
    left, right = partition.split(region, 0.5)
    assert len(partition) == 2
    assert left.high == right.low == 0.5
    assert partition.find(0.49) is left
    assert partition.find(0.5) is right


def test_split_falls_back_to_midpoint_on_degenerate_cut():
    partition = Partition(0.0, 1.0)
    region = partition.find(0.0)
    left, right = partition.split(region, 1e-9)
    assert left.high == pytest.approx(0.5)


def test_split_of_nonleaf_raises():
    partition = Partition(0.0, 1.0)
    region = partition.find(0.5)
    partition.split(region, 0.5)
    with pytest.raises(ValueError):
        partition.split(region, 0.25)


def test_find_outside_bounds_raises():
    partition = Partition(0.0, 0.9)
    with pytest.raises(ValueError):
        partition.find(0.95)


def test_partition_always_disjoint_union():
    partition = Partition(0.0, 1.0)
    for arm in (0.3, 0.7, 0.1, 0.9, 0.5):
        region = partition.find(arm)
        partition.split(region, arm)
    edges = sorted((r.low, r.high) for r in partition)
    for (low_a, high_a), (low_b, _) in zip(edges, edges[1:]):
        assert high_a == pytest.approx(low_b)
    assert edges[0][0] == 0.0
    assert edges[-1][1] == 1.0


def test_partition_snapshot_lists_edges():
    partition = Partition(0.0, 0.9)
    region = partition.find(0.4)
    partition.split(region, 0.45)
    snapshot = partition.snapshot()
    assert snapshot == {"low": 0.0, "high": 0.9,
                        "edges": [0.0, 0.45, 0.9]}
