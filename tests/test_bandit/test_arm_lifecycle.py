"""Mid-run arm-population changes: ``add_arm`` / ``retire_arm`` /
``Partition.merge`` (service-mode live registration support)."""

from __future__ import annotations

import pytest

from repro.bandit.eucb import EUCBAgent
from repro.bandit.partition import Partition


def test_merge_restores_single_region():
    partition = Partition(0.0, 1.0)
    left, right = partition.split(partition.find(0.5), 0.5)
    merged = partition.merge(left, right)
    assert len(partition) == 1
    assert merged.low == 0.0 and merged.high == 1.0
    assert partition.find(0.3) is merged


def test_merge_requires_adjacent_leaves_in_order():
    partition = Partition(0.0, 1.0)
    left, right = partition.split(partition.find(0.5), 0.5)
    ll, lr = partition.split(left, 0.25)
    with pytest.raises(ValueError):
        partition.merge(ll, right)     # lr sits between them
    with pytest.raises(ValueError):
        partition.merge(lr, ll)        # wrong order
    partition.merge(lr, right)         # adjacent: fine
    assert len(partition) == 2


def test_add_arm_splits_at_value(rng):
    agent = EUCBAgent(max_ratio=0.8, rng=rng)
    for _ in range(5):
        agent.select_ratio()
        agent.observe(1.0)
    before = agent.num_regions
    left, right = agent.add_arm(0.3)
    assert agent.num_regions == before + 1
    assert left.high == pytest.approx(0.3)
    assert right.low == pytest.approx(0.3)
    # the refined agent keeps playing normally
    arm = agent.select_ratio()
    assert 0.0 <= arm < 0.8
    agent.observe(0.5)


def test_restructuring_with_pending_play_is_refused(rng):
    agent = EUCBAgent(rng=rng)
    agent.select_ratio()
    with pytest.raises(RuntimeError):
        agent.add_arm(0.3)
    with pytest.raises(RuntimeError):
        agent.retire_arm(0.3)
    agent.observe(0.0)
    agent.add_arm(0.3)                 # fine once the play resolved


def test_retire_arm_merges_and_preserves_play_history(rng):
    agent = EUCBAgent(max_ratio=0.8, rng=rng)
    for _ in range(10):
        agent.select_ratio()
        agent.observe(1.0)
    agent.add_arm(0.3)
    played = agent.rounds_played
    regions = agent.num_regions
    agent.retire_arm(0.3)
    assert agent.num_regions == regions - 1
    assert agent.rounds_played == played
    agent.select_ratio()
    agent.observe(0.2)
    assert agent.rounds_played == played + 1


def test_retire_last_region_is_refused(rng):
    agent = EUCBAgent(rng=rng)
    with pytest.raises(ValueError):
        agent.retire_arm(0.1)
