"""E-UCB agent: Algorithm 1 mechanics and learning behaviour."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bandit.eucb import EUCBAgent


def _play(agent, reward_fn, rounds, rng):
    for _ in range(rounds):
        arm = agent.select_ratio()
        agent.observe(reward_fn(arm) + rng.normal(0, 0.02))


def test_arms_stay_inside_bounds(rng):
    agent = EUCBAgent(max_ratio=0.7, rng=rng)
    for _ in range(50):
        arm = agent.select_ratio()
        assert 0.0 <= arm < 0.7
        agent.observe(0.0)


def test_tree_growth_respects_theta(rng):
    """Regions with diameter <= theta are never split further, so with a
    large theta the leaf count saturates quickly and stays constant."""
    agent = EUCBAgent(theta=0.5, max_ratio=0.8, rng=rng)
    _play(agent, lambda a: 1.0, 40, rng)
    saturated = agent.num_regions
    assert saturated > 1
    _play(agent, lambda a: 1.0, 40, rng)
    assert agent.num_regions == saturated


def test_smaller_theta_grows_bigger_tree(rng):
    fine = EUCBAgent(theta=0.02, max_ratio=0.8,
                     rng=np.random.default_rng(0))
    coarse = EUCBAgent(theta=0.2, max_ratio=0.8,
                       rng=np.random.default_rng(0))
    noise = np.random.default_rng(1)
    _play(fine, lambda a: 1.0, 120, noise)
    _play(coarse, lambda a: 1.0, 120, noise)
    assert fine.num_regions > coarse.num_regions


def test_double_select_raises(rng):
    agent = EUCBAgent(rng=rng)
    agent.select_ratio()
    with pytest.raises(RuntimeError):
        agent.select_ratio()


def test_observe_without_select_raises(rng):
    with pytest.raises(RuntimeError):
        EUCBAgent(rng=rng).observe(1.0)


def test_abandon_clears_pending(rng):
    agent = EUCBAgent(rng=rng)
    agent.select_ratio()
    agent.abandon()
    agent.select_ratio()  # must not raise
    agent.observe(0.0)
    assert agent.rounds_played == 1


def test_abandon_does_not_leak_partition_regions(rng):
    """Regression: abandoned plays used to leave behind the split made
    at selection time, accumulating phantom never-rewarded regions with
    infinite UCB."""
    agent = EUCBAgent(theta=0.01, max_ratio=0.9, rng=rng)
    agent.select_ratio()
    agent.observe(1.0)
    before = agent.num_regions
    for _ in range(25):
        agent.select_ratio()
        agent.abandon()
    assert agent.num_regions == before
    # and no unexplored-phantom regions distort the bounds beyond the
    # single legitimate unexplored sibling of the first split
    bounds = agent.upper_confidence_bounds()
    assert sum(math.isinf(b) for b in bounds.values()) <= 1


def test_split_is_deferred_to_observe(rng):
    agent = EUCBAgent(theta=0.01, max_ratio=0.9, rng=rng)
    before = agent.num_regions
    agent.select_ratio()
    assert agent.num_regions == before       # not yet
    agent.observe(1.0)
    assert agent.num_regions == before + 1   # split lands with the reward


def test_incremental_stats_match_full_replay():
    """The O(regions) incremental statistics must agree with the
    reference full-history replay through splits, abandons and drift."""
    agent = EUCBAgent(theta=0.05, discount=0.9, max_ratio=0.9,
                      rng=np.random.default_rng(3))
    noise = np.random.default_rng(4)
    for round_index in range(120):
        arm = agent.select_ratio()
        if round_index % 7 == 3:
            agent.abandon()
            continue
        peak = 0.2 if round_index < 60 else 0.7
        agent.observe(1.0 - 6.0 * (arm - peak) ** 2 + noise.normal(0, 0.02))
        incremental, inc_total = agent._discounted_stats()
        replay, rep_total = agent._replay_stats()
        assert inc_total == pytest.approx(rep_total, rel=1e-9)
        for region in agent.partition:
            inc_count, inc_mean = incremental[region]
            rep_count, rep_sum = replay[region]
            assert inc_count == pytest.approx(rep_count, rel=1e-9, abs=1e-12)
            if rep_count > 0.0:
                assert inc_mean == pytest.approx(rep_sum / rep_count,
                                                 rel=1e-9, abs=1e-12)


def test_snapshot_pull_counts_survive_splits(rng):
    agent = EUCBAgent(theta=0.02, max_ratio=0.8,
                      rng=np.random.default_rng(6))
    _play(agent, lambda a: 1.0 - (a - 0.3) ** 2, 60,
          np.random.default_rng(7))
    snapshot = agent.snapshot()
    assert sum(arm["pulls"] for arm in snapshot["arms"]) == 60


def test_unexplored_regions_have_infinite_ucb(rng):
    agent = EUCBAgent(theta=0.2, rng=rng)
    agent.select_ratio()
    agent.observe(1.0)
    bounds = agent.upper_confidence_bounds()
    assert any(math.isinf(b) for b in bounds.values())


def test_agent_prefers_high_reward_region(rng):
    """Peaked reward at 0.6 -> late arms concentrate near the peak."""
    agent = EUCBAgent(theta=0.05, max_ratio=0.9, discount=0.98,
                      rng=np.random.default_rng(0))
    reward = lambda a: 1.0 - 6.0 * (a - 0.6) ** 2
    _play(agent, reward, 250, np.random.default_rng(1))
    late_arms = [record.arm for record in agent.history[-40:]]
    assert abs(float(np.mean(late_arms)) - 0.6) < 0.25


def test_discounting_adapts_to_drift(rng):
    """Optimal arm moves mid-run; the discounted agent follows."""
    agent = EUCBAgent(theta=0.05, discount=0.9, max_ratio=0.9,
                      rng=np.random.default_rng(2))
    noise = np.random.default_rng(3)
    _play(agent, lambda a: 1.0 - 6.0 * (a - 0.2) ** 2, 150, noise)
    _play(agent, lambda a: 1.0 - 6.0 * (a - 0.7) ** 2, 200, noise)
    late_arms = [record.arm for record in agent.history[-40:]]
    assert float(np.mean(late_arms)) > 0.4


def test_parameter_validation():
    with pytest.raises(ValueError):
        EUCBAgent(discount=1.0)
    with pytest.raises(ValueError):
        EUCBAgent(theta=0.0)
    with pytest.raises(ValueError):
        EUCBAgent(max_ratio=0.0)


def test_reward_normalization_constant_rewards(rng):
    agent = EUCBAgent(rng=rng)
    for _ in range(10):
        agent.select_ratio()
        agent.observe(5.0)  # constant -> zero spread
    bounds = agent.upper_confidence_bounds()
    assert all(np.isfinite(b) or math.isinf(b) for b in bounds.values())


def test_snapshot_reports_bandit_state(rng):
    agent = EUCBAgent(theta=0.1, max_ratio=0.8,
                      rng=np.random.default_rng(0))
    _play(agent, lambda a: 1.0 - (a - 0.4) ** 2, 30,
          np.random.default_rng(1))
    snapshot = agent.snapshot()
    assert snapshot["rounds_played"] == 30
    assert snapshot["num_regions"] == agent.num_regions
    assert snapshot["pending_arm"] is None
    assert len(snapshot["arms"]) == snapshot["num_regions"]
    # raw pull counts account for every play
    assert sum(arm["pulls"] for arm in snapshot["arms"]) == 30
    # arms tile the partition exactly
    edges = snapshot["partition"]["edges"]
    assert [arm["low"] for arm in snapshot["arms"]] == edges[:-1]
    assert [arm["high"] for arm in snapshot["arms"]] == edges[1:]
    for arm in snapshot["arms"]:
        if arm["discounted_count"] > 0:
            assert arm["mean"] is not None
            assert arm["radius"] is not None and arm["radius"] > 0
        else:
            assert arm["mean"] is None
            assert arm["radius"] is None


def test_snapshot_is_json_ready_and_pure(rng):
    import json

    agent = EUCBAgent(theta=0.2, rng=np.random.default_rng(4))
    _play(agent, lambda a: 0.5, 10, np.random.default_rng(5))
    first = agent.snapshot()
    json.dumps(first)  # JSON-serialisable as-is
    assert agent.snapshot() == first  # observation does not mutate
    arm = agent.select_ratio()  # agent still fully functional
    assert agent.snapshot()["pending_arm"] == arm
    agent.observe(0.5)


def test_snapshot_of_fresh_agent(rng):
    snapshot = EUCBAgent(rng=rng).snapshot()
    assert snapshot["rounds_played"] == 0
    assert all(arm["mean"] is None for arm in snapshot["arms"])


def test_multiplicity_matches_repeated_plays_of_one_arm():
    """``observe(reward, count=n)`` books one cohort play as ``n``
    virtual single plays of the same arm: aging by ``discount**n`` and
    a geometric play weight reproduce the statistics of ``n`` repeated
    observations bit-for-bit (geometric-series identity, no rounding
    headroom needed for these short sums)."""
    grouped = EUCBAgent(rng=np.random.default_rng(8))
    repeated = EUCBAgent(rng=np.random.default_rng(8))
    # a warmup-style forced arm keeps both partitions untouched, so
    # the only moving part is the discounted bookkeeping
    reward, count = 0.37, 3
    grouped._pending_arm = 0.0
    grouped.observe(reward, count=count)
    for _ in range(count):
        repeated._pending_arm = 0.0
        repeated.observe(reward)
    assert grouped._total_steps == repeated._total_steps == count
    bounds_a = grouped.upper_confidence_bounds()
    bounds_b = repeated.upper_confidence_bounds()
    assert set(bounds_a) == set(bounds_b)
    for region in bounds_a:
        assert np.isclose(bounds_a[region], bounds_b[region],
                          rtol=0, atol=1e-12)
    # the incremental stats still agree with the full-history replay
    # oracle, which understands counts natively
    assert grouped.consistency_report() == []
    assert repeated.consistency_report() == []


def test_multiplicity_count_one_is_bitwise_legacy():
    a = EUCBAgent(rng=np.random.default_rng(9))
    b = EUCBAgent(rng=np.random.default_rng(9))
    arm_a = a.select_ratio()
    arm_b = b.select_ratio()
    assert arm_a == arm_b
    a.observe(0.5)
    b.observe(0.5, count=1)
    assert a.upper_confidence_bounds() == b.upper_confidence_bounds()


def test_multiplicity_validation():
    agent = EUCBAgent(rng=np.random.default_rng(10))
    agent.select_ratio()
    with pytest.raises(ValueError):
        agent.observe(0.5, count=0)
