"""Regret tracking (Eq. 12) and E-UCB's no-regret trend."""

from __future__ import annotations

import numpy as np

from repro.bandit import EUCBAgent, RegretTracker


def test_tracker_accumulates():
    tracker = RegretTracker(lambda a: -abs(a - 0.5), optimal_arm=0.5)
    tracker.record(0.5)
    tracker.record(0.0)
    assert tracker.cumulative == 0.5
    assert tracker.average == 0.25


def test_trailing_average_window():
    tracker = RegretTracker(lambda a: a, optimal_arm=1.0)
    for arm in (0.0, 0.0, 1.0, 1.0):
        tracker.record(arm)
    assert tracker.trailing_average(2) == 0.0
    assert tracker.trailing_average(4) == 0.5


def test_empty_tracker():
    tracker = RegretTracker(lambda a: a, optimal_arm=1.0)
    assert tracker.average == 0.0
    assert tracker.trailing_average(5) == 0.0


def test_eucb_beats_uniform_policy_regret():
    """Eq. 12 in practice: late-round regret falls well below what a
    uniform-random arm policy achieves on the same landscape."""
    reward = lambda a: 1.0 - 4.0 * (a - 0.55) ** 2
    # uniform over [0, 0.9): E[(a-0.55)^2] = var + bias^2
    uniform_regret = 4.0 * (0.9 ** 2 / 12 + (0.45 - 0.55) ** 2)
    for seed in range(3):
        agent = EUCBAgent(theta=0.1, discount=0.995, max_ratio=0.9,
                          exploration=0.25, rng=np.random.default_rng(seed))
        tracker = RegretTracker(reward, optimal_arm=0.55)
        noise = np.random.default_rng(seed + 100)
        for _ in range(400):
            arm = agent.select_ratio()
            agent.observe(tracker.record(arm) + noise.normal(0, 0.02))
        assert tracker.trailing_average(100) < 0.6 * uniform_regret
