"""Eq. 8 reward behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bandit.reward import eucb_reward, round_rewards


def test_reward_increases_as_gap_shrinks():
    near = eucb_reward(1.0, completion_time=10.0, mean_completion_time=10.5)
    far = eucb_reward(1.0, completion_time=10.0, mean_completion_time=20.0)
    assert near > far


def test_reward_sign_follows_delta_loss():
    assert eucb_reward(1.0, 10.0, 12.0) > 0
    assert eucb_reward(-1.0, 10.0, 12.0) < 0


def test_reward_zero_gap_is_finite():
    value = eucb_reward(1.0, 10.0, 10.0)
    assert np.isfinite(value)
    assert value > 0


def test_round_rewards_uses_round_mean():
    times = [10.0, 20.0, 30.0]
    rewards = round_rewards(2.0, times)
    assert len(rewards) == 3
    # mean is 20, the middle worker has the smallest gap -> highest reward
    assert rewards[1] > rewards[0]
    assert rewards[1] > rewards[2]


def test_round_rewards_empty():
    assert round_rewards(1.0, []) == []
