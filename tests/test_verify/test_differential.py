"""Differential runner: ULP arithmetic and semantics-preserving pairs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify import (
    DivergenceError,
    compare_state_sequences,
    differential_fast_vs_dense,
    differential_sync_vs_semisync,
    ulp_distance,
)


# ----------------------------------------------------------------------
# ULP distance
# ----------------------------------------------------------------------
def test_ulp_distance_zero_for_identical_arrays():
    values = np.linspace(-3.0, 3.0, 7, dtype=np.float32)
    assert ulp_distance(values, values.copy()).max() == 0


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_ulp_distance_one_for_adjacent_floats(dtype):
    a = np.asarray([1.0, -2.5], dtype=dtype)
    b = np.nextafter(a, np.asarray(np.inf, dtype=dtype))
    assert ulp_distance(a, b).tolist() == [1, 1]


def test_ulp_distance_signed_zeros_are_adjacent():
    a = np.asarray([0.0], dtype=np.float32)
    b = np.asarray([-0.0], dtype=np.float32)
    assert ulp_distance(a, b).tolist() == [1]


def test_ulp_distance_spans_zero():
    # -tiny, -0.0, +0.0, +tiny are consecutive representable values
    tiny = np.asarray([5e-324], dtype=np.float64)
    assert ulp_distance(tiny, -tiny).tolist() == [3]


def test_ulp_distance_rejects_dtype_mismatch():
    with pytest.raises(TypeError, match="dtype"):
        ulp_distance(np.zeros(2, np.float32), np.zeros(2, np.float64))


def test_ulp_distance_rejects_shape_mismatch():
    with pytest.raises(ValueError, match="shape"):
        ulp_distance(np.zeros(2, np.float32), np.zeros(3, np.float32))


def test_ulp_distance_rejects_integer_arrays():
    with pytest.raises(TypeError, match="float32/float64"):
        ulp_distance(np.zeros(2, np.int64), np.zeros(2, np.int64))


# ----------------------------------------------------------------------
# sequence comparison
# ----------------------------------------------------------------------
def _sequence(rounds=2, seed=0):
    rng = np.random.default_rng(seed)
    return [
        {
            "w": rng.normal(size=(2, 3)).astype(np.float32),
            "b": rng.normal(size=4).astype(np.float32),
        }
        for _ in range(rounds)
    ]


def test_compare_equal_sequences_passes():
    states = _sequence()
    copies = [{k: v.copy() for k, v in s.items()} for s in states]
    report = compare_state_sequences(states, copies)
    assert report.passed
    assert report.max_ulps == 0
    assert report.describe().endswith("OK")


def test_compare_reports_first_divergence_location():
    states_a = _sequence(rounds=3)
    states_b = [{k: v.copy() for k, v in s.items()} for s in states_a]
    states_b[1]["w"].reshape(-1)[4] += np.float32(0.25)
    report = compare_state_sequences(states_a, states_b,
                                     label_a="ref", label_b="mut")
    assert not report.passed
    divergence = report.first_divergence
    assert divergence.round_index == 1
    assert divergence.key == "w"
    assert divergence.index == 4
    assert divergence.ulps == report.max_ulps > 0
    assert "round 1" in report.describe()
    with pytest.raises(DivergenceError, match=r"w\[4\]"):
        report.raise_if_failed()


def test_compare_tolerance_absorbs_small_divergence():
    states_a = _sequence()
    states_b = [{k: v.copy() for k, v in s.items()} for s in states_a]
    bumped = np.nextafter(states_b[0]["b"][0], np.float32(np.inf))
    states_b[0]["b"][0] = bumped
    assert not compare_state_sequences(states_a, states_b).passed
    report = compare_state_sequences(states_a, states_b, tolerance_ulps=1)
    assert report.passed
    assert report.max_ulps == 1


def test_compare_fails_on_round_count_mismatch():
    states = _sequence(rounds=3)
    report = compare_state_sequences(states, states[:2])
    assert not report.passed
    assert "round counts differ" in report.describe()


def test_compare_rejects_key_mismatch():
    states_a = [{"w": np.zeros(2, np.float32)}]
    states_b = [{"v": np.zeros(2, np.float32)}]
    with pytest.raises(ValueError, match="disagree on keys"):
        compare_state_sequences(states_a, states_b)


# ----------------------------------------------------------------------
# end-to-end differential pairs
# ----------------------------------------------------------------------
def test_fast_path_is_bitwise_identical_to_dense(bench, fleet, short_config):
    report = differential_fast_vs_dense(
        lambda: bench.make_task(0.0), fleet, short_config("fedmp"),
    )
    assert report.passed, report.describe()
    assert report.max_ulps == 0


def test_sync_matches_semisync_with_infinite_deadline(
        bench, fleet, short_config):
    report = differential_sync_vs_semisync(
        lambda: bench.make_task(0.0), fleet, short_config("fedmp"),
    )
    # the float64 accumulator makes the reordered float32 sums exact
    assert report.passed, report.describe()
    assert report.max_ulps == 0


def test_semisync_differential_rejects_non_sync_base(
        bench, fleet, short_config):
    config = short_config("fedmp", semi_sync_deadline_s=120.0)
    with pytest.raises(ValueError, match="synchronous base"):
        differential_sync_vs_semisync(
            lambda: bench.make_task(0.0), fleet, config,
        )
