"""Shared fixtures for the verification-subsystem tests.

Engine runs here are deliberately tiny -- four workers, two or three
rounds of the bench-scale CNN.  That is enough for the dispatch cache,
error feedback and the bandit to engage, while keeping the suite fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.setups import make_bench_task, make_devices

ROUNDS = 2
WORKERS = 4


@pytest.fixture(scope="package")
def bench():
    return make_bench_task("cnn")


@pytest.fixture(scope="package")
def fleet():
    return make_devices("medium", count=WORKERS)


@pytest.fixture(scope="package")
def short_config(bench):
    """Factory for short, eval-free configs on the shared bench task."""

    def build(strategy="fedmp", rounds=ROUNDS, **overrides):
        overrides.setdefault("seed", 17)
        overrides.setdefault("target_metric", None)
        overrides.setdefault("eval_every", rounds)
        return bench.make_config(strategy, max_rounds=rounds, **overrides)

    return build
