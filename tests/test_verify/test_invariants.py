"""InvariantHook: clean runs pass every check, corruption is caught."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.bandit.eucb import EUCBAgent
from repro.fl.hooks import RoundHook
from repro.fl.runner import run_federated_training
from repro.pruning.plan import LayerPrune, PruningPlan
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.verify import ALL_CHECKS, InvariantHook, InvariantViolation


def _telemetry() -> Telemetry:
    return Telemetry(tracer=Tracer(), metrics=MetricsRegistry(enabled=True))


def _checks_by_kind(metrics: MetricsRegistry, name: str) -> dict:
    return {
        counter.labels["check"]: counter.value
        for counter in metrics.counters if counter.name == name
    }


def _stub_engine() -> SimpleNamespace:
    """Just enough engine surface for unit-level invariant checks."""
    return SimpleNamespace(telemetry=_telemetry())


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def test_rejects_unknown_violation_mode():
    with pytest.raises(ValueError, match="on_violation"):
        InvariantHook(on_violation="warn")


def test_rejects_unknown_check_names():
    with pytest.raises(ValueError, match="unknown checks"):
        InvariantHook(checks=("mass", "vibes"))


# ----------------------------------------------------------------------
# clean end-to-end runs
# ----------------------------------------------------------------------
def test_clean_fedmp_run_passes_all_checks(bench, fleet, short_config):
    hook = InvariantHook(on_violation="record")
    telemetry = _telemetry()
    run_federated_training(bench.make_task(0.0), fleet,
                           short_config("fedmp"),
                           hooks=[hook], telemetry=telemetry)
    assert hook.violations == []
    assert hook.checks_run > 0
    by_kind = _checks_by_kind(telemetry.metrics, "invariant_checks_total")
    # FedMP dispatches pruned sub-models and runs the bandit every round
    for kind in ("plan", "shapes", "mass", "bandit"):
        assert by_kind.get(kind, 0) > 0, f"{kind} check never ran"
    assert sum(by_kind.values()) == hook.checks_run
    assert not _checks_by_kind(telemetry.metrics,
                               "invariant_violations_total")


def test_clean_flexcom_run_checks_error_feedback(bench, fleet, short_config):
    hook = InvariantHook(on_violation="record")
    telemetry = _telemetry()
    run_federated_training(bench.make_task(0.0), fleet,
                           short_config("flexcom"),
                           hooks=[hook], telemetry=telemetry)
    assert hook.violations == []
    by_kind = _checks_by_kind(telemetry.metrics, "invariant_checks_total")
    # FlexCom compresses uploads, so the mass-accounting check engages
    assert by_kind.get("error_feedback", 0) > 0


# ----------------------------------------------------------------------
# corruption is caught
# ----------------------------------------------------------------------
class _CorruptGlobalState(RoundHook):
    """Perturb the aggregated global model before the invariant hook
    sees it (hooks run in list order)."""

    def attach(self, engine) -> None:
        self._engine = engine

    def on_aggregate(self, round_index, contributions) -> None:
        state = self._engine.server.global_state
        key = sorted(state)[0]
        state[key] = state[key] + np.float32(1e-3)
        self._engine.server.model.load_state_dict(state)


def test_mass_violation_recorded_on_corrupted_global_state(
        bench, fleet, short_config):
    hook = InvariantHook(on_violation="record", checks=("mass",))
    run_federated_training(bench.make_task(0.0), fleet,
                           short_config("fedmp"),
                           hooks=[_CorruptGlobalState(), hook],
                           telemetry=_telemetry())
    assert hook.violations
    assert all(v.check == "mass" for v in hook.violations)
    first = hook.violations[0]
    assert first.round_index == 0
    assert "ULPs" in str(first)


def test_mass_violation_raises_by_default(bench, fleet, short_config):
    hook = InvariantHook(checks=("mass",))
    with pytest.raises(InvariantViolation, match="invariant 'mass'"):
        run_federated_training(bench.make_task(0.0), fleet,
                               short_config("fedmp"),
                               hooks=[_CorruptGlobalState(), hook],
                               telemetry=_telemetry())


# ----------------------------------------------------------------------
# plan well-formedness (unit level)
# ----------------------------------------------------------------------
def _plan_with(kept_out, out_full=6, ratio=0.5) -> PruningPlan:
    plan = PruningPlan(ratio=ratio)
    plan.add("fc", LayerPrune(
        kind="linear",
        kept_out=np.asarray(kept_out, dtype=np.intp), out_full=out_full,
        kept_in=None, in_full=None,
    ))
    return plan


def _record_plan_check(plan: PruningPlan) -> InvariantHook:
    hook = InvariantHook(on_violation="record", checks=("plan",))
    hook.attach(_stub_engine())
    hook.on_dispatch(0, SimpleNamespace(plan=plan, worker_id=0))
    return hook


def test_plan_unsorted_indices_detected():
    hook = _record_plan_check(_plan_with([3, 1, 0]))
    assert any("strictly increasing" in str(v) for v in hook.violations)


def test_plan_out_of_range_indices_detected():
    hook = _record_plan_check(_plan_with([2, 6]))
    assert any("out of range" in str(v) for v in hook.violations)


def test_plan_wrong_keep_count_detected():
    # ratio 0.5 over 6 outputs keeps 3; keeping 2 is neither that nor
    # the whole layer
    hook = _record_plan_check(_plan_with([1, 4]))
    assert any("keep_count" in str(v) for v in hook.violations)


def test_plan_keep_count_accepts_protected_layers():
    hook = _record_plan_check(_plan_with([0, 1, 2, 3, 4, 5]))
    assert hook.violations == []


# ----------------------------------------------------------------------
# bandit statistics integrity
# ----------------------------------------------------------------------
def _played_agent(plays: int = 12) -> EUCBAgent:
    agent = EUCBAgent(rng=np.random.default_rng(3))
    for step in range(plays):
        agent.select_ratio()
        agent.observe(float(np.sin(step)))
    return agent


def test_consistency_report_clean_agent():
    assert _played_agent().consistency_report() == []


def test_consistency_report_detects_corrupted_stats():
    agent = _played_agent()
    stats = next(s for s in agent._stats.values() if s.disc_count > 0)
    stats.disc_count *= 1.5
    problems = agent.consistency_report()
    assert problems
    assert any("drift" in problem for problem in problems)


def test_bandit_check_flags_corrupted_agent_via_hook():
    agent = _played_agent()
    next(s for s in agent._stats.values() if s.disc_count > 0).disc_raw_sum += 7.0
    engine = _stub_engine()
    engine.strategy = SimpleNamespace(agents={4: agent})
    hook = InvariantHook(on_violation="record", checks=("bandit",))
    hook.attach(engine)
    hook.on_round_end(SimpleNamespace(round_index=5))
    assert hook.violations
    violation = hook.violations[0]
    assert violation.check == "bandit"
    assert violation.round_index == 5
    assert "worker 4" in str(violation)


def test_bandit_check_skips_non_bandit_strategies():
    engine = _stub_engine()
    engine.strategy = SimpleNamespace()   # no .agents attribute
    hook = InvariantHook(on_violation="record", checks=("bandit",))
    hook.attach(engine)
    hook.on_round_end(SimpleNamespace(round_index=0))
    assert hook.checks_run == 0
    assert hook.violations == []


def test_all_checks_is_the_default():
    assert InvariantHook().checks == ALL_CHECKS
