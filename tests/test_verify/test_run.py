"""VerificationReport plumbing and the ``repro verify`` CLI surface.

The full battery itself runs in CI (and via ``python -m repro.cli
verify``); here we pin the report semantics and argument handling
without paying for eleven engine runs.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser
from repro.verify import CheckResult, VerificationReport
from repro.verify.run import run_verification


def _report(*passed_flags):
    report = VerificationReport(preset="cnn", rounds=3)
    for index, passed in enumerate(passed_flags):
        report.results.append(
            CheckResult(f"check/{index}", passed, "detail text"))
    return report


def test_report_passes_only_when_every_check_does():
    assert _report(True, True).passed
    assert not _report(True, False).passed
    assert not _report(False).passed


def test_report_failures_lists_failed_checks():
    report = _report(True, False, False)
    assert [r.name for r in report.failures()] == ["check/1", "check/2"]


def test_report_describe_marks_each_check():
    text = _report(True, False).describe()
    assert "[PASS] check/0" in text
    assert "[FAIL] check/1" in text
    assert "1 check(s) FAILED" in text
    assert _report(True).describe().endswith("verdict: OK")


def test_run_verification_needs_at_least_two_rounds():
    with pytest.raises(ValueError, match="at least 2 rounds"):
        run_verification(rounds=1)


def test_cli_parses_verify_arguments():
    args = build_parser().parse_args([
        "verify", "--preset", "lstm", "--rounds", "4",
        "--tolerance", "2", "--semisync-tolerance", "8",
        "--workers", "6", "--seed", "3",
    ])
    assert args.preset == "lstm"
    assert args.rounds == 4
    assert args.tolerance == 2
    assert args.semisync_tolerance == 8
    assert args.workers == 6
    assert args.seed == 3


def test_cli_verify_defaults():
    args = build_parser().parse_args(["verify"])
    assert args.preset == "cnn"
    assert args.rounds == 5
    assert args.tolerance == 0
    assert args.semisync_tolerance is None


def test_cli_rejects_unknown_preset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["verify", "--preset", "transformer"])
