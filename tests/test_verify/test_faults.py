"""Fault injection: every fault kind produces its documented outcome."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.hooks import RoundHook
from repro.fl.runner import run_federated_training
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.verify import (
    FAULT_KINDS,
    DuplicateContributionError,
    EmptyRoundError,
    FaultInjectionHook,
    FaultSpec,
    PoisonedUpdateError,
    StateCaptureHook,
    compare_state_sequences,
)

from .conftest import WORKERS


class _CountHook(RoundHook):
    def __init__(self) -> None:
        self.counts = []

    def on_aggregate(self, round_index, contributions) -> None:
        self.counts.append(len(contributions))


def _run(bench, fleet, config, specs, telemetry=None):
    """Run a faulted experiment; returns (fault hook, per-round counts,
    captured global states)."""
    fault = FaultInjectionHook(specs)
    count = _CountHook()
    capture = StateCaptureHook()
    run_federated_training(bench.make_task(0.0), fleet, config,
                           hooks=[fault, count, capture],
                           telemetry=telemetry)
    return fault, count.counts, capture.states


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("meteor", 0, 0)


def test_spec_rejects_non_positive_stale_delay():
    with pytest.raises(ValueError, match="delay_rounds"):
        FaultSpec("stale", 0, 0, delay_rounds=0)


def test_fault_kinds_cover_the_documented_taxonomy():
    assert FAULT_KINDS == ("drop", "duplicate", "poison", "stale",
                           "zero_samples")


# ----------------------------------------------------------------------
# drop
# ----------------------------------------------------------------------
def test_drop_removes_one_contribution(bench, fleet, short_config):
    fault, counts, _ = _run(bench, fleet, short_config("fedmp"),
                            [FaultSpec("drop", 1, fleet[0].device_id)])
    assert counts == [WORKERS, WORKERS - 1]
    assert len(fault.injected) == 1


def test_dropping_every_worker_raises_empty_round(bench, fleet, short_config):
    specs = [FaultSpec("drop", 1, device.device_id) for device in fleet]
    with pytest.raises(EmptyRoundError):
        _run(bench, fleet, short_config("fedmp"), specs)


def test_fault_against_absent_worker_is_not_counted(
        bench, fleet, short_config):
    fault, counts, _ = _run(bench, fleet, short_config("fedmp"),
                            [FaultSpec("drop", 0, 999)])
    assert counts == [WORKERS, WORKERS]
    assert fault.injected == []


# ----------------------------------------------------------------------
# duplicate / poison
# ----------------------------------------------------------------------
def test_duplicate_contribution_rejected(bench, fleet, short_config):
    with pytest.raises(DuplicateContributionError, match="twice"):
        _run(bench, fleet, short_config("fedmp"),
             [FaultSpec("duplicate", 0, fleet[0].device_id)])


def test_poison_rejected_under_default_policy(bench, fleet, short_config):
    with pytest.raises(PoisonedUpdateError, match="non-finite"):
        _run(bench, fleet, short_config("fedmp"),
             [FaultSpec("poison", 0, fleet[0].device_id)])


def test_poison_skipped_and_counted_under_skip_policy(
        bench, fleet, short_config):
    telemetry = Telemetry(tracer=Tracer(),
                          metrics=MetricsRegistry(enabled=True))
    _, counts, states = _run(
        bench, fleet, short_config("fedmp", nan_policy="skip"),
        [FaultSpec("poison", 1, fleet[0].device_id)],
        telemetry=telemetry,
    )
    # the poisoned contribution stays in the round's set but carries no
    # weight; the skip is observable through telemetry
    assert counts == [WORKERS, WORKERS]
    skipped = sum(c.value for c in telemetry.metrics.counters
                  if c.name == "poisoned_updates_total")
    assert skipped == 1
    assert all(np.isfinite(value).all()
               for value in states[-1].values())


def test_poison_propagates_with_guard_off(bench, fleet, short_config):
    """Regression guard: nan_policy='off' restores the pre-guard
    behaviour, where one poisoned upload corrupts the global model."""
    _, _, states = _run(
        bench, fleet, short_config("fedmp", nan_policy="off"),
        [FaultSpec("poison", 0, fleet[0].device_id)],
    )
    assert any(np.isnan(value).any() for value in states[-1].values())


# ----------------------------------------------------------------------
# stale / zero samples
# ----------------------------------------------------------------------
def test_stale_contribution_lands_one_round_late(bench, fleet, short_config):
    fault, counts, _ = _run(
        bench, fleet, short_config("fedmp"),
        [FaultSpec("stale", 0, fleet[0].device_id, delay_rounds=1)],
    )
    # withheld from round 0; replaces the worker's fresh upload in
    # round 1, so the landing round still has one entry per worker
    assert counts == [WORKERS - 1, WORKERS]
    assert fault.pending_stale == 0
    assert len(fault.injected) == 1


def test_zero_samples_equivalent_to_drop_under_weighting(
        bench, fleet, short_config):
    config = short_config("fedmp", sync_scheme="r2sp_weighted")
    worker = fleet[0].device_id
    _, zero_counts, zero_states = _run(
        bench, fleet, config, [FaultSpec("zero_samples", 1, worker)])
    _, drop_counts, drop_states = _run(
        bench, fleet, config, [FaultSpec("drop", 1, worker)])
    # the zero-sample contribution stays in the round but the weighted
    # aggregator assigns it weight zero -- same arithmetic as dropping it
    assert zero_counts == [WORKERS, WORKERS]
    assert drop_counts == [WORKERS, WORKERS - 1]
    report = compare_state_sequences(zero_states, drop_states,
                                     label_a="zero_samples", label_b="drop")
    assert report.passed, report.describe()
