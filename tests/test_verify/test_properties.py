"""Property tests: the scatter fast path against dense reference oracles.

Fuzzes over the generators in :mod:`repro.verify.strategies`:
well-formed pruning plans on linear-chain templates, random state
dicts, and heterogeneous device fleets.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.aggregation import Contribution, R2SPAggregator
from repro.pruning.masks import residual_state_dict
from repro.pruning.plan import PruningPlan
from repro.pruning.structured import (
    recover_state_dict,
    scatter_add_param,
    scatter_add_residual,
)
from repro.verify.strategies import (
    linear_chain_scenarios,
    pruning_ratios,
    state_dicts,
    worker_fleets,
)


@settings(max_examples=50, deadline=None)
@given(scenario=linear_chain_scenarios())
def test_scatter_add_matches_dense_recovery(scenario):
    """The aggregator's scatter-add accumulation of a sub-model is
    bitwise the dense zero-expansion reference, for any plan/weight."""
    template, plan, sub_state, weight = scenario
    planned = plan.param_names()
    accumulator = {
        key: np.zeros_like(value, dtype=np.float64)
        for key, value in template.items()
    }
    for key, (layer, suffix) in planned.items():
        scatter_add_param(accumulator[key], suffix, plan[layer],
                          sub_state[key], weight)
    recovered = recover_state_dict(sub_state, plan, template)
    for key in planned:
        # mirror the dense path's arithmetic exactly: a float32 product
        # accumulated into a float64 buffer
        expected = np.zeros_like(template[key], dtype=np.float64)
        expected += weight * recovered[key]
        np.testing.assert_array_equal(accumulator[key], expected)


@settings(max_examples=50, deadline=None)
@given(scenario=linear_chain_scenarios())
def test_scatter_add_residual_matches_dense_residual(scenario):
    """In-place residual folding == the materialised residual model."""
    template, plan, _, weight = scenario
    planned = plan.param_names()
    accumulator = {
        key: np.zeros_like(value, dtype=np.float64)
        for key, value in template.items()
    }
    for key, (layer, suffix) in planned.items():
        scatter_add_residual(accumulator[key], suffix, plan[layer],
                             template[key], weight)
    residual = residual_state_dict(template, plan)
    for key in planned:
        expected = np.zeros_like(template[key], dtype=np.float64)
        expected += weight * residual[key]
        np.testing.assert_array_equal(accumulator[key], expected)


@settings(max_examples=50, deadline=None)
@given(scenario=linear_chain_scenarios())
def test_recovery_plus_residual_reconstructs_the_global_state(scenario):
    """R2SP's core identity: an untrained sub-model plus its residual
    is exactly the global state (every position carries either its
    dispatched value or its pre-round global value)."""
    template, plan, sub_state, _ = scenario
    recovered = recover_state_dict(sub_state, plan, template)
    residual = residual_state_dict(template, plan)
    for key in plan.param_names():
        np.testing.assert_array_equal(recovered[key] + residual[key],
                                      template[key])


@settings(max_examples=30, deadline=None)
@given(scenario=linear_chain_scenarios())
def test_single_untrained_contribution_is_a_fixed_point(scenario):
    """Aggregating one contribution that uploaded exactly what was
    dispatched reproduces the global state bit for bit."""
    template, plan, sub_state, _ = scenario
    contribution = Contribution(worker_id=0, sub_state=sub_state,
                                plan=plan, global_state=template)
    result = R2SPAggregator().aggregate([contribution], template)
    for key, value in template.items():
        np.testing.assert_array_equal(
            result[key].astype(value.dtype), value)


@settings(max_examples=40, deadline=None)
@given(state=state_dicts(), position=st.integers(0, 10 ** 6))
def test_poison_scan_finds_any_single_nan(state, position):
    """The aggregator's finiteness scan catches a NaN planted at any
    position of any array, and passes the clean original."""
    aggregator = R2SPAggregator()
    clean = Contribution(worker_id=0, sub_state=state,
                         plan=PruningPlan(ratio=0.0))
    assert aggregator._poisoned_entry(clean) is None

    poisoned = {key: value.copy() for key, value in state.items()}
    victim = sorted(poisoned)[position % len(poisoned)]
    flat = poisoned[victim].reshape(-1)
    flat[position % flat.size] = np.nan
    dirty = Contribution(worker_id=0, sub_state=poisoned,
                         plan=PruningPlan(ratio=0.0))
    assert aggregator._poisoned_entry(dirty) == victim


@settings(max_examples=30, deadline=None)
@given(ratio=pruning_ratios())
def test_pruning_ratio_strategy_stays_in_range(ratio):
    assert 0.0 <= ratio <= 0.8


@settings(max_examples=20, deadline=None)
@given(fleet=worker_fleets())
def test_worker_fleet_strategy_is_well_formed(fleet):
    assert [device.device_id for device in fleet] == list(range(len(fleet)))
    for device in fleet:
        assert 10.0 ** 6 <= device.bandwidth_bps <= 10.0 ** 8
        assert device.cluster in ("A", "B")
