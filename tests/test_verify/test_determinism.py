"""Seed determinism: two same-seed runs are byte-identical.

The engine derives every RNG stream from ``config.seed`` in a fixed
order, so everything a run records -- except wall-clock measurements
on the host -- must reproduce exactly.  The test serialises both
histories to JSON, zeroes the two wall-clock fields (``overhead_s``
and the TimingHook's ``wall_time_s`` extra), and compares the bytes.
"""

from __future__ import annotations

import json

from repro.fl.hooks import TimingHook
from repro.fl.runner import run_federated_training
from repro.io import save_history
from repro.verify import StateCaptureHook, compare_state_sequences


def _normalised_history_bytes(history, path) -> bytes:
    save_history(history, path)
    payload = json.loads(path.read_text())
    for entry in payload["rounds"]:
        entry["overhead_s"] = 0.0
        entry.get("extras", {}).pop("wall_time_s", None)
    return json.dumps(payload, sort_keys=True).encode()


def test_same_seed_runs_are_byte_identical(tmp_path, bench, fleet,
                                           short_config):
    captures = []
    blobs = []
    for attempt in range(2):
        capture = StateCaptureHook()
        history = run_federated_training(
            bench.make_task(0.0), fleet, short_config("fedmp"),
            hooks=[TimingHook(), capture],
        )
        captures.append(capture.states)
        blobs.append(_normalised_history_bytes(
            history, tmp_path / f"history_{attempt}.json"))

    assert blobs[0] == blobs[1]
    report = compare_state_sequences(captures[0], captures[1],
                                     label_a="run0", label_b="run1")
    assert report.passed, report.describe()
    assert report.max_ulps == 0


def test_different_seeds_actually_diverge(tmp_path, bench, fleet,
                                          short_config):
    """Counter-test: the byte comparison is not vacuously true."""
    blobs = []
    for seed in (17, 18):
        history = run_federated_training(
            bench.make_task(0.0), fleet, short_config("fedmp", seed=seed),
        )
        blobs.append(_normalised_history_bytes(
            history, tmp_path / f"history_seed{seed}.json"))
    assert blobs[0] != blobs[1]
