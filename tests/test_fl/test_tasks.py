"""Task adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.data.text import make_synthetic_ptb
from repro.fl.tasks import ClassificationTask, LanguageModelTask


@pytest.fixture(scope="module")
def mnist():
    return make_synthetic_mnist(train_per_class=10, test_per_class=4,
                                rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def ptb():
    return make_synthetic_ptb(vocab_size=60, train_tokens=4000,
                              valid_tokens=500, test_tokens=500,
                              rng=np.random.default_rng(0))


def test_classification_task_wiring(mnist, rng):
    task = ClassificationTask(mnist, "cnn")
    model = task.build_model(rng)
    assert model.num_classes == 10
    metric, loss = task.evaluate(model, max_samples=20)
    assert 0.0 <= metric <= 1.0
    assert task.count_flops(model) > 0
    assert task.higher_is_better


def test_classification_partition_covers_data(mnist, rng):
    task = ClassificationTask(mnist, "cnn")
    shards = task.partition(4, rng)
    assert len(shards) == 4
    assert sum(x.shape[0] for x, _ in shards) == mnist.train_x.shape[0]


def test_classification_non_iid_level_passthrough(rng):
    # a dataset with enough per-class supply for the 80% dominant demand
    rich = make_synthetic_mnist(train_per_class=40, test_per_class=4,
                                rng=np.random.default_rng(1))
    task = ClassificationTask(rich, "cnn", non_iid_level=80)
    shards = task.partition(10, rng)
    from collections import Counter

    _, labels = shards[0]
    dominant = Counter(labels).most_common(1)[0][1] / labels.shape[0]
    assert dominant >= 0.6


def test_classification_prune_roundtrip(mnist, rng):
    task = ClassificationTask(mnist, "cnn")
    model = task.build_model(rng)
    plan = task.build_plan(model, 0.5)
    sub = task.extract(model, plan, rng)
    assert sub.num_parameters() < model.num_parameters()


def test_lm_task_wiring(ptb, rng):
    task = LanguageModelTask(ptb, seq_len=8, lm_batch_size=4,
                             model_kwargs={"embedding_dim": 8,
                                           "hidden_size": 12})
    model = task.build_model(rng)
    ppl, ce = task.evaluate(model, max_samples=4)
    assert ppl > 1.0
    assert not task.higher_is_better
    assert task.count_flops(model) > 0


def test_lm_partition_and_iterator(ptb, rng):
    task = LanguageModelTask(ptb, seq_len=8, lm_batch_size=4)
    shards = task.partition(3, rng)
    assert len(shards) == 3
    iterator = task.make_iterator(shards[0], batch_size=1, rng=rng)
    seq, target = iterator.next_batch()
    assert seq.shape == (8, 4)
    assert target.shape == (8, 4)


def test_lm_prune_roundtrip(ptb, rng):
    task = LanguageModelTask(ptb, seq_len=8, lm_batch_size=4,
                             model_kwargs={"embedding_dim": 8,
                                           "hidden_size": 12})
    model = task.build_model(rng)
    sub = task.extract(model, task.build_plan(model, 0.5), rng)
    assert sub.num_parameters() < model.num_parameters()
