"""Top-k sparsification and error feedback (FlexCom machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.compression import ErrorFeedback, top_k_sparsify


def _delta(rng):
    return {
        "a": rng.normal(size=(4, 4)),
        "b": rng.normal(size=(10,)),
    }


def test_top_k_keeps_requested_fraction(rng):
    delta = _delta(rng)
    sparse, kept = top_k_sparsify(delta, 0.25)
    total = sum(v.size for v in delta.values())
    assert kept == pytest.approx(round(total * 0.25), abs=2)
    nonzero = sum(int((v != 0).sum()) for v in sparse.values())
    assert nonzero == kept


def test_top_k_keeps_largest_magnitudes(rng):
    delta = {"a": np.array([0.1, -5.0, 0.2, 3.0])}
    sparse, kept = top_k_sparsify(delta, 0.5)
    assert kept == 2
    assert sparse["a"].tolist() == [0.0, -5.0, 0.0, 3.0]


def test_top_k_full_keep_is_identity(rng):
    delta = _delta(rng)
    sparse, kept = top_k_sparsify(delta, 1.0)
    assert kept == sum(v.size for v in delta.values())
    for key in delta:
        assert np.allclose(sparse[key], delta[key])


def test_top_k_invalid_fraction(rng):
    with pytest.raises(ValueError):
        top_k_sparsify(_delta(rng), 0.0)


def test_error_feedback_accumulates_dropped_mass(rng):
    feedback = ErrorFeedback()
    delta = {"a": np.array([1.0, 0.1])}
    compensated = feedback.compensate(delta)
    sparse, _ = top_k_sparsify(compensated, 0.5)
    feedback.update(compensated, sparse)
    # next round the dropped 0.1 is added back
    second = feedback.compensate({"a": np.array([0.0, 0.05])})
    assert second["a"][1] == pytest.approx(0.15)


def test_error_feedback_transmits_everything_eventually(rng):
    """Sum of transmitted updates converges to the sum of raw deltas."""
    feedback = ErrorFeedback()
    raw_total = np.zeros(6)
    sent_total = np.zeros(6)
    for _ in range(60):
        delta = {"a": rng.normal(size=6)}
        raw_total += delta["a"]
        compensated = feedback.compensate(delta)
        sparse, _ = top_k_sparsify(compensated, 0.34)
        feedback.update(compensated, sparse)
        sent_total += sparse["a"]
    residual = feedback._memory["a"]
    assert np.allclose(sent_total + residual, raw_total, atol=1e-8)
