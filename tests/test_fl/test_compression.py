"""Top-k sparsification and error feedback (FlexCom machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.compression import ErrorFeedback, top_k_sparsify
from repro.models import build_cnn
from repro.pruning import build_pruning_plan, extract_submodel
from repro.pruning.plan import LayerPrune, PruningPlan


def _delta(rng):
    return {
        "a": rng.normal(size=(4, 4)),
        "b": rng.normal(size=(10,)),
    }


def test_top_k_keeps_requested_fraction(rng):
    delta = _delta(rng)
    sparse, kept = top_k_sparsify(delta, 0.25)
    total = sum(v.size for v in delta.values())
    assert kept == pytest.approx(round(total * 0.25), abs=2)
    nonzero = sum(int((v != 0).sum()) for v in sparse.values())
    assert nonzero == kept


def test_top_k_keeps_largest_magnitudes(rng):
    delta = {"a": np.array([0.1, -5.0, 0.2, 3.0])}
    sparse, kept = top_k_sparsify(delta, 0.5)
    assert kept == 2
    assert sparse["a"].tolist() == [0.0, -5.0, 0.0, 3.0]


def test_top_k_full_keep_is_identity(rng):
    delta = _delta(rng)
    sparse, kept = top_k_sparsify(delta, 1.0)
    assert kept == sum(v.size for v in delta.values())
    for key in delta:
        assert np.allclose(sparse[key], delta[key])


def test_top_k_invalid_fraction(rng):
    with pytest.raises(ValueError):
        top_k_sparsify(_delta(rng), 0.0)


def test_error_feedback_accumulates_dropped_mass(rng):
    feedback = ErrorFeedback()
    delta = {"a": np.array([1.0, 0.1])}
    compensated = feedback.compensate(delta)
    sparse, _ = top_k_sparsify(compensated, 0.5)
    feedback.update(compensated, sparse)
    # next round the dropped 0.1 is added back
    second = feedback.compensate({"a": np.array([0.0, 0.05])})
    assert second["a"][1] == pytest.approx(0.15)


def test_error_feedback_transmits_everything_eventually(rng):
    """Sum of transmitted updates converges to the sum of raw deltas."""
    feedback = ErrorFeedback()
    raw_total = np.zeros(6)
    sent_total = np.zeros(6)
    for _ in range(60):
        delta = {"a": rng.normal(size=6)}
        raw_total += delta["a"]
        compensated = feedback.compensate(delta)
        sparse, _ = top_k_sparsify(compensated, 0.34)
        feedback.update(compensated, sparse)
        sent_total += sparse["a"]
    residual = feedback._memory["a"]
    assert np.allclose(sent_total + residual, raw_total, atol=1e-8)


# ----------------------------------------------------------------------
# plan-aware (global-coordinate) error feedback under adaptive pruning
# ----------------------------------------------------------------------
def test_error_feedback_survives_shape_changes_across_rounds(rng):
    """Regression: adaptive pruning changes the sub-model shape round to
    round; name-keyed sub-model-coordinate memory crashed (or silently
    broadcast) on the second round."""
    model = build_cnn(rng=rng)
    template = model.state_dict()
    feedback = ErrorFeedback()
    extract = np.random.default_rng(3)
    for ratio in (0.3, 0.6, 0.0, 0.45):
        plan = build_pruning_plan(model, ratio)
        sub = extract_submodel(model, plan, rng=extract)
        delta = {
            key: np.full_like(value, 0.01)
            for key, value in sub.state_dict().items()
        }
        compensated = feedback.compensate(delta, plan=plan)
        for key in delta:
            assert compensated[key].shape == delta[key].shape
        sparse, _ = top_k_sparsify(compensated, 0.3)
        feedback.update(compensated, sparse, plan=plan, template=template)
    for key, memory in feedback._memory.items():
        assert memory.shape == template[key].shape


def _linear_plan(kept_out):
    plan = PruningPlan(ratio=0.5)
    plan.add("fc", LayerPrune(kind="linear", kept_out=kept_out, out_full=4,
                              kept_in=[0, 1, 2, 3], in_full=4))
    return plan


def test_memory_banked_for_pruned_units_until_redispatch():
    """Mass dropped for a unit stays banked while the unit is pruned
    and is compensated the next time that unit is dispatched."""
    template = {"fc.weight": np.zeros((4, 4)), "fc.bias": np.zeros(4)}
    feedback = ErrorFeedback()

    plan_a = _linear_plan([0, 1])
    delta = {"fc.weight": np.ones((2, 4)), "fc.bias": np.ones(2)}
    compensated = feedback.compensate(delta, plan=plan_a)
    nothing = {key: np.zeros_like(value) for key, value in compensated.items()}
    feedback.update(compensated, nothing, plan=plan_a, template=template)

    # round 2 dispatches the *other* rows; they carry no banked memory
    plan_b = _linear_plan([2, 3])
    zeros = {"fc.weight": np.zeros((2, 4)), "fc.bias": np.zeros(2)}
    compensated_b = feedback.compensate(zeros, plan=plan_b)
    assert np.allclose(compensated_b["fc.weight"], 0.0)
    assert np.allclose(compensated_b["fc.bias"], 0.0)
    feedback.update(compensated_b, compensated_b, plan=plan_b,
                    template=template)

    # round 3 re-dispatches rows 0/1: the banked ones come back
    compensated_c = feedback.compensate(zeros, plan=plan_a)
    assert np.allclose(compensated_c["fc.weight"], 1.0)
    assert np.allclose(compensated_c["fc.bias"], 1.0)


def test_plan_aware_update_requires_template():
    feedback = ErrorFeedback()
    plan = _linear_plan([0, 1])
    delta = {"fc.weight": np.ones((2, 4)), "fc.bias": np.ones(2)}
    nothing = {key: np.zeros_like(value) for key, value in delta.items()}
    with pytest.raises(ValueError, match="template"):
        feedback.update(delta, nothing, plan=plan)
