"""Training history reductions (the figure/table primitives)."""

from __future__ import annotations

import pytest

from repro.fl.history import RoundRecord, TrainingHistory


def _record(i, t, metric):
    return RoundRecord(
        round_index=i, sim_time_s=t, round_time_s=t if i == 0 else 1.0,
        metric=metric, eval_loss=None, train_loss=1.0, ratios={},
        completion_times={},
    )


@pytest.fixture
def history():
    h = TrainingHistory(strategy="fedmp", model_name="cnn/mnist")
    for i, (t, metric) in enumerate(
        [(10, 0.2), (20, None), (30, 0.5), (40, 0.8), (50, 0.9)]
    ):
        h.append(_record(i, t, metric))
    return h


def test_time_to_target(history):
    assert history.time_to_target(0.5) == 30
    assert history.time_to_target(0.85) == 50
    assert history.time_to_target(0.99) is None


def test_rounds_to_target(history):
    assert history.rounds_to_target(0.5) == 3


def test_metric_at_time(history):
    assert history.metric_at_time(35) == 0.5
    assert history.metric_at_time(5) is None
    assert history.metric_at_time(100) == 0.9


def test_final_metric_skips_unevaluated(history):
    assert history.final_metric() == 0.9


def test_curves(history):
    curve = history.accuracy_curve()
    assert curve[0] == (10, 0.2)
    assert len(curve) == 4  # round with metric=None excluded
    rounds = history.round_curve()
    assert rounds[0] == (0, 0.2)


def test_lower_is_better_mode():
    h = TrainingHistory(strategy="fedmp", model_name="lstm/ptb",
                        higher_is_better=False)
    for i, (t, ppl) in enumerate([(10, 300.0), (20, 180.0), (30, 140.0)]):
        h.append(_record(i, t, ppl))
    assert h.time_to_target(150.0) == 30
    assert h.metric_at_time(25) == 180.0


def test_mean_round_time_and_total(history):
    assert history.total_time_s == 50
    assert history.mean_round_time() == pytest.approx((10 + 4) / 5)


def test_empty_history():
    h = TrainingHistory(strategy="x", model_name="y")
    assert h.final_metric() is None
    assert h.total_time_s == 0.0
    assert h.mean_round_time() == 0.0
    assert h.mean_overhead() == 0.0


def test_percentile_round_time(history):
    # durations are [10, 1, 1, 1, 1]
    assert history.percentile_round_time(0) == 1.0
    assert history.percentile_round_time(50) == 1.0
    assert history.percentile_round_time(100) == 10.0
    # p75 interpolates between the 3rd and 4th order statistics (1, 10)
    assert history.percentile_round_time(75) == pytest.approx(1.0)
    assert history.percentile_round_time(95) == pytest.approx(
        1.0 + 0.8 * 9.0
    )


def test_percentile_round_time_validates_and_degenerates():
    h = TrainingHistory(strategy="x", model_name="y")
    assert h.percentile_round_time(95) == 0.0
    h.append(_record(0, 7.0, None))
    assert h.percentile_round_time(50) == 7.0
    with pytest.raises(ValueError):
        h.percentile_round_time(101)
    with pytest.raises(ValueError):
        h.percentile_round_time(-5)


def test_total_overhead(history):
    for i, record in enumerate(history.rounds):
        record.overhead_s = 0.01 * (i + 1)
    assert history.total_overhead_s == pytest.approx(0.15)
    assert history.mean_overhead() == pytest.approx(0.03)
