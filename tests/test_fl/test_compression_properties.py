"""Hypothesis property tests for the compression path."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.compression import ErrorFeedback, top_k_sparsify

finite_floats = st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False, allow_infinity=False)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite_floats, min_size=1, max_size=64),
    keep=st.floats(min_value=0.05, max_value=1.0),
)
def test_top_k_properties(values, keep):
    delta = {"a": np.asarray(values)}
    sparse, kept = top_k_sparsify(delta, keep)
    # kept count is at least one and never exceeds the tensor size
    assert 1 <= kept <= len(values)
    # sparsified entries are either zero or exactly the original value
    mask = sparse["a"] != 0
    assert np.allclose(sparse["a"][mask], delta["a"][mask])
    # the survivors dominate the dropped entries in magnitude
    dropped = np.abs(delta["a"][(~mask) & (delta["a"] != 0)])
    survivors = np.abs(sparse["a"][mask])
    if dropped.size and survivors.size:
        assert survivors.min() >= dropped.max() - 1e-9


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    keep=st.floats(min_value=0.1, max_value=0.9),
    rounds=st.integers(min_value=1, max_value=20),
)
def test_error_feedback_conservation(seed, keep, rounds):
    """raw total == transmitted total + residual memory, always."""
    rng = np.random.default_rng(seed)
    feedback = ErrorFeedback()
    raw = np.zeros(8)
    sent = np.zeros(8)
    for _ in range(rounds):
        delta = {"a": rng.normal(size=8)}
        raw += delta["a"]
        compensated = feedback.compensate(delta)
        sparse, _ = top_k_sparsify(compensated, keep)
        feedback.update(compensated, sparse)
        sent += sparse["a"]
    assert np.allclose(sent + feedback._memory["a"], raw, atol=1e-9)
