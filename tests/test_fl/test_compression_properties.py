"""Hypothesis property tests for the compression path."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.compression import ErrorFeedback, top_k_sparsify

finite_floats = st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False, allow_infinity=False)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(finite_floats, min_size=1, max_size=64),
    keep=st.floats(min_value=0.05, max_value=1.0),
)
def test_top_k_properties(values, keep):
    delta = {"a": np.asarray(values)}
    sparse, kept = top_k_sparsify(delta, keep)
    # kept count is at least one and never exceeds the tensor size
    assert 1 <= kept <= len(values)
    # sparsified entries are either zero or exactly the original value
    mask = sparse["a"] != 0
    assert np.allclose(sparse["a"][mask], delta["a"][mask])
    # the survivors dominate the dropped entries in magnitude
    dropped = np.abs(delta["a"][(~mask) & (delta["a"] != 0)])
    survivors = np.abs(sparse["a"][mask])
    if dropped.size and survivors.size:
        assert survivors.min() >= dropped.max() - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    magnitudes=st.lists(
        st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
        min_size=2, max_size=48,
    ),
    signs=st.lists(st.sampled_from([-1.0, 1.0]), min_size=48, max_size=48),
    keep=st.floats(min_value=0.05, max_value=0.95),
)
def test_top_k_exact_budget_under_ties(magnitudes, signs, keep):
    """Regression: tied magnitudes at the threshold used to overshoot
    the budget (``>= threshold`` kept every tie); exactly
    ``max(1, round(total * keep))`` scalars must survive."""
    values = [m * s for m, s in zip(magnitudes, signs)]
    half = len(values) // 2
    delta = {"a": np.asarray(values[:half]), "b": np.asarray(values[half:])}
    total = len(values)
    sparse, kept = top_k_sparsify(delta, keep)
    budget = max(1, int(round(total * keep)))
    if budget >= total:
        assert kept == total
    else:
        assert kept == budget
    nonzero = sum(int((v != 0).sum()) for v in sparse.values())
    # zero-valued survivors are invisible in the output, so the
    # non-zero count can only undershoot the kept count
    assert nonzero <= kept


def test_top_k_tie_break_is_deterministic_and_positional():
    """All-equal magnitudes: the earliest positions win the budget."""
    delta = {"a": np.full(4, 0.5), "b": np.full(4, -0.5)}
    sparse, kept = top_k_sparsify(delta, 0.5)
    assert kept == 4
    assert sparse["a"].tolist() == [0.5, 0.5, 0.5, 0.5]
    assert sparse["b"].tolist() == [0.0, 0.0, 0.0, 0.0]
    again, _ = top_k_sparsify(delta, 0.5)
    for key in delta:
        assert np.array_equal(sparse[key], again[key])


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2 ** 16),
    keep=st.floats(min_value=0.1, max_value=0.9),
    rounds=st.integers(min_value=1, max_value=20),
)
def test_error_feedback_conservation(seed, keep, rounds):
    """raw total == transmitted total + residual memory, always."""
    rng = np.random.default_rng(seed)
    feedback = ErrorFeedback()
    raw = np.zeros(8)
    sent = np.zeros(8)
    for _ in range(rounds):
        delta = {"a": rng.normal(size=8)}
        raw += delta["a"]
        compensated = feedback.compensate(delta)
        sparse, _ = top_k_sparsify(compensated, keep)
        feedback.update(compensated, sparse)
        sent += sparse["a"]
    assert np.allclose(sent + feedback._memory["a"], raw, atol=1e-9)
