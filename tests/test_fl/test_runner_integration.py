"""End-to-end integration tests of the training runners.

Small configs keep these fast; they check behaviour (learning happens,
clocks advance, strategies act, async works), not absolute accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.data.text import make_synthetic_ptb
from repro.fl.config import FLConfig
from repro.fl.runner import run_federated_training
from repro.fl.tasks import ClassificationTask, LanguageModelTask
from repro.simulation.cluster import make_scenario_devices


@pytest.fixture(scope="module")
def mnist_task():
    dataset = make_synthetic_mnist(train_per_class=30, test_per_class=8,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices("medium", np.random.default_rng(7))


def _config(**kwargs):
    base = dict(max_rounds=4, local_iterations=2, batch_size=8, lr=0.05,
                eval_every=2, seed=3)
    base.update(kwargs)
    return FLConfig(**base)


def test_synfl_learns_and_clock_advances(mnist_task, devices):
    history = run_federated_training(mnist_task, devices,
                                     _config(strategy="synfl"))
    assert len(history.rounds) == 4
    assert history.total_time_s > 0
    times = [r.sim_time_s for r in history.rounds]
    assert all(b > a for a, b in zip(times, times[1:]))
    assert history.final_metric() is not None
    assert history.rounds[-1].train_loss < history.rounds[0].train_loss


def test_fedmp_assigns_personalised_ratios(mnist_task, devices):
    history = run_federated_training(
        mnist_task, devices,
        _config(strategy="fedmp",
                strategy_kwargs={"warmup_rounds": 1}),
    )
    later = history.rounds[-1].ratios
    assert len(set(np.round(list(later.values()), 6))) > 1
    assert all(0.0 <= r < 0.9 for r in later.values())


def test_fedmp_faster_than_synfl_in_sim_time(mnist_task, devices):
    """The headline claim, at smoke scale: FedMP's rounds are shorter."""
    syn = run_federated_training(mnist_task, devices,
                                 _config(strategy="synfl", max_rounds=5))
    fed = run_federated_training(
        mnist_task, devices,
        _config(strategy="fedmp", max_rounds=5,
                strategy_kwargs={"warmup_rounds": 1}),
    )
    assert fed.total_time_s < syn.total_time_s


def test_bsp_differs_from_r2sp(mnist_task, devices):
    r2sp = run_federated_training(
        mnist_task, devices, _config(strategy="fedmp", sync_scheme="r2sp"))
    bsp = run_federated_training(
        mnist_task, devices, _config(strategy="fedmp", sync_scheme="bsp"))
    assert r2sp.rounds[-1].train_loss != bsp.rounds[-1].train_loss


def test_flexcom_uploads_fewer_params(mnist_task, devices):
    history = run_federated_training(
        mnist_task, devices,
        _config(strategy="flexcom",
                strategy_kwargs={"base_keep": 0.2}),
    )
    assert history.final_metric() is not None


def test_deadline_discards_are_recorded(mnist_task, devices):
    history = run_federated_training(
        mnist_task, devices,
        _config(strategy="synfl", deadline_quorum=0.5,
                deadline_multiplier=1.0, jitter_sigma=0.3),
    )
    assert len(history.rounds) == 4  # runs to completion regardless


def test_time_budget_stops_early(mnist_task, devices):
    history = run_federated_training(
        mnist_task, devices,
        _config(strategy="synfl", max_rounds=50, time_budget_s=1.0),
    )
    assert len(history.rounds) == 1


def test_target_metric_stops_early(mnist_task, devices):
    history = run_federated_training(
        mnist_task, devices,
        _config(strategy="synfl", max_rounds=50, target_metric=0.0,
                eval_every=1),
    )
    assert len(history.rounds) == 1


def test_async_runner_m_of_n(mnist_task, devices):
    history = run_federated_training(
        mnist_task, devices,
        _config(strategy="fedmp", async_m=4, max_rounds=5),
    )
    assert len(history.rounds) == 5
    for record in history.rounds:
        assert len(record.completion_times) == 4
    times = [r.sim_time_s for r in history.rounds]
    assert all(b >= a for a, b in zip(times, times[1:]))


def test_async_m_larger_than_workers_rejected(mnist_task, devices):
    with pytest.raises(ValueError):
        run_federated_training(
            mnist_task, devices, _config(strategy="synfl", async_m=99))


def test_reproducible_given_seed(mnist_task, devices):
    a = run_federated_training(mnist_task, devices,
                               _config(strategy="fedmp", seed=11))
    b = run_federated_training(mnist_task, devices,
                               _config(strategy="fedmp", seed=11))
    assert a.final_metric() == b.final_metric()
    assert a.total_time_s == pytest.approx(b.total_time_s)


def test_language_model_round_trip():
    corpus = make_synthetic_ptb(vocab_size=60, train_tokens=6000,
                                valid_tokens=600, test_tokens=600,
                                rng=np.random.default_rng(1))
    task = LanguageModelTask(corpus, seq_len=8, lm_batch_size=4,
                             model_kwargs={"embedding_dim": 8,
                                           "hidden_size": 16})
    devices = make_scenario_devices("medium", np.random.default_rng(5))
    history = run_federated_training(
        task, devices,
        FLConfig(strategy="fedmp", max_rounds=4, local_iterations=2,
                 batch_size=1, lr=0.5, eval_every=2, seed=2),
    )
    assert not history.higher_is_better
    assert history.final_metric() > 1.0
