"""Worker local training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import BatchIterator
from repro.fl.worker import Worker
from repro.models import build_cnn
from repro.simulation.device import JETSON_TX2_MODES, DeviceProfile


@pytest.fixture
def worker(rng):
    x = rng.normal(size=(40, 1, 28, 28)).astype(np.float32)
    y = rng.integers(0, 10, size=40)
    iterator = BatchIterator(x, y, batch_size=8, rng=rng)
    device = DeviceProfile(0, JETSON_TX2_MODES[0], 10e6)
    return Worker(0, iterator, device, jitter_sigma=0.0, rng=rng)


def test_local_train_changes_parameters(worker, rng):
    model = build_cnn(rng=rng)
    before = model.state_dict()
    loss = worker.local_train(model, tau=2, lr=0.05)
    assert loss > 0
    after = model.state_dict()
    changed = any(
        not np.allclose(before[key], after[key])
        for key in before if not key.endswith(("running_mean", "running_var"))
    )
    assert changed


def test_local_train_loss_is_mean_over_tau(worker, rng):
    model = build_cnn(rng=rng)
    loss = worker.local_train(model, tau=3, lr=0.01)
    assert 0 < loss < 20


def test_proximal_training_stays_closer_to_anchor(rng):
    """FedProx with large mu keeps the local model nearer the dispatch
    state than plain SGD does."""
    x = rng.normal(size=(40, 1, 28, 28)).astype(np.float32)
    y = rng.integers(0, 10, size=40)
    device = DeviceProfile(0, JETSON_TX2_MODES[0], 10e6)

    def distance(prox_mu):
        model = build_cnn(rng=np.random.default_rng(0))
        anchor = model.state_dict()
        iterator = BatchIterator(x, y, 8, rng=np.random.default_rng(1))
        worker = Worker(0, iterator, device, jitter_sigma=0.0,
                        rng=np.random.default_rng(2))
        worker.local_train(model, tau=5, lr=0.05, prox_mu=prox_mu,
                           anchor=anchor)
        after = model.state_dict()
        return sum(
            float(((after[key] - anchor[key]) ** 2).sum()) for key in anchor
        )

    assert distance(prox_mu=5.0) < distance(prox_mu=0.0)


def test_round_costs_positive(worker):
    costs = worker.round_costs(1e6, 1000, 1000, batch_size=8, tau=2)
    assert costs.computation_s > 0
    assert costs.download_s > 0
    assert costs.upload_s > 0
