"""Round hooks: callback ordering and the built-in instrumentation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.fl.hooks as hooks_module
from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.hooks import CommVolumeHook, HookList, RoundHook, TimingHook
from repro.fl.runner import run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices("medium", np.random.default_rng(7))


def _config(**kwargs):
    base = dict(strategy="synfl", max_rounds=2, local_iterations=1,
                batch_size=8, seed=3)
    base.update(kwargs)
    return FLConfig(**base)


class RecordingHook(RoundHook):
    """Logs every callback for ordering/content assertions."""

    def __init__(self):
        self.events = []

    def on_dispatch(self, round_index, dispatch):
        self.events.append(("dispatch", round_index, dispatch.worker_id))

    def on_contribution(self, round_index, dispatch, contribution,
                        train_loss):
        self.events.append(("contribution", round_index,
                            contribution.worker_id))

    def on_aggregate(self, round_index, contributions):
        self.events.append(
            ("aggregate", round_index,
             tuple(c.worker_id for c in contributions))
        )

    def on_round_end(self, record):
        self.events.append(("round_end", record.round_index, None))


def test_hook_sees_full_round_lifecycle(task, devices):
    hook = RecordingHook()
    run_federated_training(task, devices, _config(), hooks=[hook])
    kinds = [kind for kind, _, _ in hook.events]
    n = len(devices)
    # round 0: n dispatches, n contributions, one aggregate, one end
    assert kinds[:n] == ["dispatch"] * n
    assert kinds[n:2 * n] == ["contribution"] * n
    assert kinds[2 * n] == "aggregate"
    assert kinds[2 * n + 1] == "round_end"
    # every aggregate folds exactly the contributed workers
    for kind, round_index, payload in hook.events:
        if kind == "aggregate":
            assert len(payload) == n


def test_hook_list_forwards_in_order(task, devices):
    first, second = RecordingHook(), RecordingHook()
    hooks = HookList([first, second])
    hooks.on_round_end(_fake_record(0))
    assert first.events == second.events == [("round_end", 0, None)]


def _fake_record(round_index):
    from repro.fl.history import RoundRecord

    return RoundRecord(round_index=round_index, sim_time_s=1.0,
                       round_time_s=1.0, metric=None, eval_loss=None,
                       train_loss=1.0, ratios={}, completion_times={})


def test_timing_hook_publishes_wall_time(task, devices):
    timing = TimingHook()
    history = run_federated_training(task, devices, _config(),
                                     hooks=[timing])
    for record in history.rounds:
        assert record.extras["wall_time_s"] > 0.0
    assert timing.total_wall_time_s == pytest.approx(
        sum(r.extras["wall_time_s"] for r in history.rounds)
    )


def test_comm_volume_hook_counts_transfers(task, devices):
    comm = CommVolumeHook()
    history = run_federated_training(task, devices, _config(),
                                     hooks=[comm])
    for record in history.rounds:
        assert record.extras["download_params"] > 0
        assert record.extras["upload_params"] > 0
    assert comm.total_download_params == pytest.approx(
        sum(r.extras["download_params"] for r in history.rounds)
    )
    assert comm.total_params == pytest.approx(
        comm.total_download_params + comm.total_upload_params
    )


def test_comm_volume_tracks_pruning(task, devices):
    """FedMP's pruned dispatches move fewer parameters than full models."""
    full, pruned = CommVolumeHook(), CommVolumeHook()
    run_federated_training(task, devices, _config(strategy="synfl"),
                           hooks=[full])
    run_federated_training(
        task, devices,
        _config(strategy="fedmp",
                strategy_kwargs={"warmup_rounds": 1, "max_ratio": 0.7}),
        hooks=[pruned],
    )
    assert pruned.total_download_params < full.total_download_params


def test_hooks_do_not_change_training(task, devices):
    bare = run_federated_training(task, devices, _config())
    hooked = run_federated_training(
        task, devices, _config(),
        hooks=[TimingHook(), CommVolumeHook(), RecordingHook()],
    )
    for a, b in zip(bare.rounds, hooked.rounds):
        assert a.train_loss == b.train_loss
        assert a.sim_time_s == b.sim_time_s
        assert a.metric == b.metric


# ----------------------------------------------------------------------
# timing / comm-volume attribution under non-barrier schedulers
# ----------------------------------------------------------------------
def test_timing_hook_async_totals_reconcile(task, devices):
    """Async rounds re-dispatch for round k+1 before round k closes;
    wall-time attribution must stay disjoint so totals reconcile."""
    timing = TimingHook()
    history = run_federated_training(
        task, devices, _config(max_rounds=3, async_m=3), hooks=[timing]
    )
    walls = [r.extras["wall_time_s"] for r in history.rounds]
    assert all(w >= 0.0 for w in walls)
    assert timing.total_wall_time_s == pytest.approx(sum(walls))


def test_timing_hook_semi_sync_totals_reconcile(task, devices):
    timing = TimingHook()
    history = run_federated_training(
        task, devices, _config(max_rounds=3, semi_sync_deadline_s=6.0),
        hooks=[timing],
    )
    walls = [r.extras["wall_time_s"] for r in history.rounds]
    assert all(w >= 0.0 for w in walls)
    assert timing.total_wall_time_s == pytest.approx(sum(walls))


def test_comm_volume_async_carryover_reconciles(task, devices):
    """Dispatch volume is counted in the sending round, upload volume
    in the aggregating round; totals reconcile via the pending tail."""
    comm = CommVolumeHook()
    history = run_federated_training(
        task, devices, _config(max_rounds=3, async_m=3), hooks=[comm]
    )
    downloads = sum(r.extras["download_params"] for r in history.rounds)
    uploads = sum(r.extras["upload_params"] for r in history.rounds)
    # the last round's re-dispatches are labelled a round that never
    # closes, so they stay pending rather than in any round's extras
    assert comm.pending_download_params > 0.0
    assert comm.total_download_params == pytest.approx(
        downloads + comm.pending_download_params
    )
    # uploads always land in a closing round
    assert comm.pending_upload_params == 0.0
    assert comm.total_upload_params == pytest.approx(uploads)
    # every aggregated contribution was dispatched at some point
    assert comm.total_download_params >= comm.total_upload_params


def test_comm_volume_semi_sync_carryover_reconciles(task, devices):
    comm = CommVolumeHook()
    history = run_federated_training(
        task, devices, _config(max_rounds=3, semi_sync_deadline_s=6.0),
        hooks=[comm],
    )
    carried = any(r.carried_over for r in history.rounds)
    assert carried, "deadline chosen to force carry-over"
    downloads = sum(r.extras["download_params"] for r in history.rounds)
    assert comm.total_download_params == pytest.approx(
        downloads + comm.pending_download_params
    )
    assert comm.pending_upload_params == 0.0
    assert comm.total_upload_params == pytest.approx(
        sum(r.extras["upload_params"] for r in history.rounds)
    )


# ----------------------------------------------------------------------
# property: disjoint wall-time attribution (satellite of the zero-
# contribution double-charge fix)
# ----------------------------------------------------------------------
class _FakeClock:
    """Deterministic stand-in for the ``time`` module in hooks."""

    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt

    def perf_counter(self):
        return self.now


def _dispatch_stub():
    class _D:
        worker_id = 0
        download_params = 10
        upload_params = 10
    return _D()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            # host time spent inside the round before it ends
            st.floats(min_value=0.0, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
            # number of dispatches observed during the round (0 models
            # a round that closes with no contributions at all)
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1, max_size=12,
    )
)
def test_timing_attribution_is_disjoint_and_total(rounds):
    """Per-round wall times are non-negative, tile the run without
    overlap, and always sum to the hook's running total -- including
    rounds that end with zero dispatches/contributions (the old
    per-round-start keying double-charged those)."""
    clock = _FakeClock()
    hook = TimingHook()
    original_time = hooks_module.time
    hooks_module.time = clock
    try:
        records = []
        first_dispatch_time = None
        first_end_time = None
        for index, (duration, dispatches) in enumerate(rounds):
            for _ in range(dispatches):
                if first_dispatch_time is None \
                        and first_end_time is None:
                    first_dispatch_time = clock.now
                hook.on_dispatch(index, _dispatch_stub())
                clock.advance(duration / (dispatches + 1))
            clock.advance(duration / (dispatches + 1))
            record = _fake_record(index)
            hook.on_round_end(record)
            if first_end_time is None:
                first_end_time = clock.now
            records.append(record)
    finally:
        hooks_module.time = original_time

    walls = [r.extras["wall_time_s"] for r in records]
    assert all(w >= 0.0 for w in walls)
    # totals always equal the sum of the per-round extras
    assert hook.total_wall_time_s == pytest.approx(sum(walls))
    # disjoint tiling: the charged intervals partition [t0, last_end]
    # exactly once, where t0 is the first dispatch the hook saw (or
    # the first round end, if no dispatch preceded it)
    t0 = first_dispatch_time if first_dispatch_time is not None \
        else first_end_time
    assert sum(walls) == pytest.approx(clock.now - t0)


# ----------------------------------------------------------------------
# attribution under PR-6 cohort-sharded rounds + client sampling
# ----------------------------------------------------------------------
_COHORT_SCHEDULERS = {
    "sync": {},
    "async": {"async_m": 3},
    "semi_sync": {"semi_sync_deadline_s": 6.0},
}


@pytest.mark.parametrize("scheduler", sorted(_COHORT_SCHEDULERS))
def test_timing_hook_cohort_sampled_totals_reconcile(
        task, devices, scheduler):
    """Cohort-sharded dispatch and client sampling change *which*
    on_dispatch calls the hook sees (one per sampled member, batched
    per cohort, possibly for future rounds via the DispatchQueue), but
    the disjoint-attribution invariant must survive unchanged."""
    timing = TimingHook()
    history = run_federated_training(
        task, devices,
        _config(max_rounds=3, cohort_rounds="on", clients_per_round=4,
                **_COHORT_SCHEDULERS[scheduler]),
        hooks=[timing],
    )
    walls = [r.extras["wall_time_s"] for r in history.rounds]
    assert len(walls) == 3
    assert all(w >= 0.0 for w in walls)
    assert timing.total_wall_time_s == pytest.approx(sum(walls))


@pytest.mark.parametrize("scheduler", sorted(_COHORT_SCHEDULERS))
def test_comm_volume_cohort_sampled_reconciles(task, devices, scheduler):
    comm = CommVolumeHook()
    history = run_federated_training(
        task, devices,
        _config(max_rounds=3, cohort_rounds="on", clients_per_round=4,
                **_COHORT_SCHEDULERS[scheduler]),
        hooks=[comm],
    )
    downloads = sum(r.extras["download_params"] for r in history.rounds)
    uploads = sum(r.extras["upload_params"] for r in history.rounds)
    assert comm.total_download_params == pytest.approx(
        downloads + comm.pending_download_params
    )
    assert comm.pending_upload_params == 0.0
    assert comm.total_upload_params == pytest.approx(uploads)
    assert comm.total_download_params >= comm.total_upload_params


def test_cohort_sampling_does_not_inflate_comm_volume(task, devices):
    """Sampling 4 of the fleet per round must move ~4 workers' bytes,
    not the full fleet's (the pre-PR-6 per-member accounting would)."""
    sampled, full = CommVolumeHook(), CommVolumeHook()
    run_federated_training(
        task, devices,
        _config(cohort_rounds="on", clients_per_round=4),
        hooks=[sampled],
    )
    run_federated_training(task, devices, _config(cohort_rounds="on"),
                           hooks=[full])
    assert sampled.total_download_params == pytest.approx(
        full.total_download_params * 4 / len(devices)
    )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
            # current-round dispatches (0 = a round with no sampled
            # members contributing)
            st.integers(min_value=0, max_value=3),
            # dispatches the event-driven DispatchQueue issues for
            # FUTURE rounds before this round closes (async/semi-sync
            # carry-over re-dispatch)
            st.integers(min_value=0, max_value=2),
        ),
        min_size=1, max_size=12,
    )
)
def test_timing_attribution_disjoint_under_future_dispatches(rounds):
    """The PR-6 DispatchQueue can hand the hook dispatches labelled
    round k+1 while round k is still open; attribution must charge
    that host time to the round that *closes* over it, exactly once,
    so the tiling invariant holds for cohort-sampled event-driven
    runs too."""
    clock = _FakeClock()
    hook = TimingHook()
    original_time = hooks_module.time
    hooks_module.time = clock
    try:
        records = []
        first_activity = None
        for index, (duration, dispatches, future) in enumerate(rounds):
            slots = dispatches + future + 1
            for _ in range(dispatches):
                if first_activity is None:
                    first_activity = clock.now
                hook.on_dispatch(index, _dispatch_stub())
                clock.advance(duration / slots)
            for _ in range(future):
                if first_activity is None:
                    first_activity = clock.now
                hook.on_dispatch(index + 1, _dispatch_stub())
                clock.advance(duration / slots)
            clock.advance(duration / slots)
            record = _fake_record(index)
            hook.on_round_end(record)
            if first_activity is None:
                first_activity = clock.now
            records.append(record)
    finally:
        hooks_module.time = original_time

    walls = [r.extras["wall_time_s"] for r in records]
    assert all(w >= 0.0 for w in walls)
    assert hook.total_wall_time_s == pytest.approx(sum(walls))
    # the charged intervals tile [first activity, last round end]
    assert sum(walls) == pytest.approx(clock.now - first_activity)
