"""Round hooks: callback ordering and the built-in instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.hooks import CommVolumeHook, HookList, RoundHook, TimingHook
from repro.fl.runner import run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices("medium", np.random.default_rng(7))


def _config(**kwargs):
    base = dict(strategy="synfl", max_rounds=2, local_iterations=1,
                batch_size=8, seed=3)
    base.update(kwargs)
    return FLConfig(**base)


class RecordingHook(RoundHook):
    """Logs every callback for ordering/content assertions."""

    def __init__(self):
        self.events = []

    def on_dispatch(self, round_index, dispatch):
        self.events.append(("dispatch", round_index, dispatch.worker_id))

    def on_contribution(self, round_index, dispatch, contribution,
                        train_loss):
        self.events.append(("contribution", round_index,
                            contribution.worker_id))

    def on_aggregate(self, round_index, contributions):
        self.events.append(
            ("aggregate", round_index,
             tuple(c.worker_id for c in contributions))
        )

    def on_round_end(self, record):
        self.events.append(("round_end", record.round_index, None))


def test_hook_sees_full_round_lifecycle(task, devices):
    hook = RecordingHook()
    run_federated_training(task, devices, _config(), hooks=[hook])
    kinds = [kind for kind, _, _ in hook.events]
    n = len(devices)
    # round 0: n dispatches, n contributions, one aggregate, one end
    assert kinds[:n] == ["dispatch"] * n
    assert kinds[n:2 * n] == ["contribution"] * n
    assert kinds[2 * n] == "aggregate"
    assert kinds[2 * n + 1] == "round_end"
    # every aggregate folds exactly the contributed workers
    for kind, round_index, payload in hook.events:
        if kind == "aggregate":
            assert len(payload) == n


def test_hook_list_forwards_in_order(task, devices):
    first, second = RecordingHook(), RecordingHook()
    hooks = HookList([first, second])
    hooks.on_round_end(_fake_record(0))
    assert first.events == second.events == [("round_end", 0, None)]


def _fake_record(round_index):
    from repro.fl.history import RoundRecord

    return RoundRecord(round_index=round_index, sim_time_s=1.0,
                       round_time_s=1.0, metric=None, eval_loss=None,
                       train_loss=1.0, ratios={}, completion_times={})


def test_timing_hook_publishes_wall_time(task, devices):
    timing = TimingHook()
    history = run_federated_training(task, devices, _config(),
                                     hooks=[timing])
    for record in history.rounds:
        assert record.extras["wall_time_s"] > 0.0
    assert timing.total_wall_time_s == pytest.approx(
        sum(r.extras["wall_time_s"] for r in history.rounds)
    )


def test_comm_volume_hook_counts_transfers(task, devices):
    comm = CommVolumeHook()
    history = run_federated_training(task, devices, _config(),
                                     hooks=[comm])
    for record in history.rounds:
        assert record.extras["download_params"] > 0
        assert record.extras["upload_params"] > 0
    assert comm.total_download_params == pytest.approx(
        sum(r.extras["download_params"] for r in history.rounds)
    )
    assert comm.total_params == pytest.approx(
        comm.total_download_params + comm.total_upload_params
    )


def test_comm_volume_tracks_pruning(task, devices):
    """FedMP's pruned dispatches move fewer parameters than full models."""
    full, pruned = CommVolumeHook(), CommVolumeHook()
    run_federated_training(task, devices, _config(strategy="synfl"),
                           hooks=[full])
    run_federated_training(
        task, devices,
        _config(strategy="fedmp",
                strategy_kwargs={"warmup_rounds": 1, "max_ratio": 0.7}),
        hooks=[pruned],
    )
    assert pruned.total_download_params < full.total_download_params


def test_hooks_do_not_change_training(task, devices):
    bare = run_federated_training(task, devices, _config())
    hooked = run_federated_training(
        task, devices, _config(),
        hooks=[TimingHook(), CommVolumeHook(), RecordingHook()],
    )
    for a, b in zip(bare.rounds, hooked.rounds):
        assert a.train_loss == b.train_loss
        assert a.sim_time_s == b.sim_time_s
        assert a.metric == b.metric
