"""FLConfig validation."""

from __future__ import annotations

import pytest

from repro.fl.config import FLConfig


def test_defaults_follow_paper():
    config = FLConfig()
    assert config.strategy == "fedmp"
    assert config.sync_scheme == "r2sp"
    assert config.local_iterations > 0


def test_invalid_sync_scheme():
    with pytest.raises(ValueError):
        FLConfig(sync_scheme="asp")


def test_invalid_local_iterations():
    with pytest.raises(ValueError):
        FLConfig(local_iterations=0)


def test_invalid_async_m():
    with pytest.raises(ValueError):
        FLConfig(async_m=0)


def test_async_m_accepts_positive():
    assert FLConfig(async_m=5).async_m == 5


def test_nan_policy_default_and_validation():
    assert FLConfig().nan_policy == "raise"
    assert FLConfig(nan_policy="skip").nan_policy == "skip"
    with pytest.raises(ValueError, match="nan_policy"):
        FLConfig(nan_policy="ignore")
