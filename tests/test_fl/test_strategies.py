"""Strategy behaviours: ratios, iterations, compression, Table I."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.strategies import (
    STRATEGIES,
    capability_table,
    make_strategy,
)
from repro.fl.strategies.base import RoundObservation
from repro.simulation.timing import RoundCosts

WORKERS = [0, 1, 2]


def _costs(comp, down=1.0, up=1.0):
    return RoundCosts(computation_s=comp, download_s=down, upload_s=up)


def _observe(strategy, round_index, comp_times, delta_loss=0.5):
    strategy.observe_round(RoundObservation(
        round_index=round_index,
        costs={wid: _costs(t) for wid, t in comp_times.items()},
        delta_loss=delta_loss,
    ))


def _config(name, **kwargs):
    return FLConfig(strategy=name, strategy_kwargs=kwargs, local_iterations=4)


def test_registry_contains_all_paper_methods():
    paper_methods = {"fedmp", "synfl", "upfl", "fedprox", "flexcom"}
    assert paper_methods <= set(STRATEGIES)
    # plus the fixed-ratio ablation instrument
    assert "fixed" in STRATEGIES


def test_fixed_ratio_strategy(rng):
    strategy = make_strategy("fixed", WORKERS,
                             _config("fixed", ratio=0.4), rng=rng)
    ratios = strategy.select_ratios(0)
    assert all(r == 0.4 for r in ratios.values())
    with pytest.raises(ValueError):
        make_strategy("fixed", WORKERS, _config("fixed", ratio=1.0), rng=rng)


def test_make_strategy_unknown():
    with pytest.raises(KeyError):
        make_strategy("magic", WORKERS, FLConfig())


def test_synfl_always_ratio_zero(rng):
    strategy = make_strategy("synfl", WORKERS, _config("synfl"), rng=rng)
    for round_index in range(3):
        ratios = strategy.select_ratios(round_index)
        assert all(r == 0.0 for r in ratios.values())
        _observe(strategy, round_index, {0: 1.0, 1: 2.0, 2: 3.0})


def test_fedmp_warmup_then_personalised(rng):
    strategy = make_strategy("fedmp", WORKERS,
                             _config("fedmp", warmup_rounds=1), rng=rng)
    warm = strategy.select_ratios(0)
    assert all(r == 0.0 for r in warm.values())
    _observe(strategy, 0, {0: 1.0, 1: 2.0, 2: 3.0})
    ratios = strategy.select_ratios(1)
    assert all(0.0 <= r < 0.9 for r in ratios.values())
    _observe(strategy, 1, {0: 1.0, 1: 2.0, 2: 3.0})
    assert all(agent.rounds_played == 2 for agent in strategy.agents.values())


def test_fedmp_discarded_worker_abandons_play(rng):
    strategy = make_strategy("fedmp", WORKERS, _config("fedmp"), rng=rng)
    strategy.select_ratios(0)
    strategy.observe_round(RoundObservation(
        round_index=0, costs={0: _costs(1.0), 1: _costs(2.0)},
        delta_loss=0.1, discarded=[2],
    ))
    # worker 2's agent must be selectable again
    strategy.select_ratios(1)


def test_upfl_uniform_across_workers(rng):
    strategy = make_strategy("upfl", WORKERS,
                             _config("upfl", warmup_rounds=0), rng=rng)
    ratios = strategy.select_ratios(0)
    assert len(set(ratios.values())) == 1
    _observe(strategy, 0, {0: 1.0, 1: 2.0, 2: 3.0})


def test_fedprox_scales_iterations_to_compute(rng):
    strategy = make_strategy("fedprox", WORKERS, _config("fedprox"), rng=rng)
    assert strategy.local_iterations(0) == 4  # no history yet
    _observe(strategy, 0, {0: 1.0, 1: 2.0, 2: 4.0})
    assert strategy.local_iterations(0) == 4
    assert strategy.local_iterations(1) == 2
    assert strategy.local_iterations(2) == 1
    assert strategy.proximal_mu() > 0


def test_flexcom_compresses_slow_links(rng):
    strategy = make_strategy("flexcom", WORKERS,
                             _config("flexcom", base_keep=0.3), rng=rng)
    assert strategy.upload_keep_fraction(0) == pytest.approx(0.3)
    strategy.observe_round(RoundObservation(
        round_index=0,
        costs={
            0: RoundCosts(1.0, 1.0, upload_s=1.0),
            1: RoundCosts(1.0, 1.0, upload_s=4.0),
        },
        delta_loss=0.1,
    ))
    fast_keep = strategy.upload_keep_fraction(0)
    slow_keep = strategy.upload_keep_fraction(1)
    assert slow_keep < fast_keep
    assert strategy.upload_keep_fraction(2) == pytest.approx(0.3)


def test_capability_table_matches_table1():
    rows = dict(capability_table())
    # FedMP ticks every column
    assert rows["fedmp"] == ["yes"] * 6
    # Syn-FL only hardware independence
    assert rows["synfl"][2] == "yes"
    assert rows["synfl"].count("yes") == 1
    # UP-FL (Jiang et al.) needs sparse hardware/libraries
    assert rows["upfl"][2] == "-"
    # FlexCom: communication-efficient + comm heterogeneity
    assert rows["flexcom"][1] == "yes"
    assert rows["flexcom"][4] == "yes"
    assert rows["flexcom"][0] == "-"
    # FedProx: computation heterogeneity, no efficiency columns
    assert rows["fedprox"][3] == "yes"
    assert rows["fedprox"][0] == "-"
