"""Oracle strategy: capability-aware ratio assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.runner import run_federated_training
from repro.fl.strategies import make_strategy
from repro.fl.strategies.oracle import OracleStrategy
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices
from repro.simulation.device import JETSON_TX2_MODES, DeviceProfile


def _mixed_devices():
    return [
        DeviceProfile(0, JETSON_TX2_MODES[0], 12e6, "A"),   # fast
        DeviceProfile(1, JETSON_TX2_MODES[0], 12e6, "A"),
        DeviceProfile(2, JETSON_TX2_MODES[3], 2e6, "C"),    # slow
    ]


def test_oracle_prunes_only_slow_workers():
    devices = _mixed_devices()
    config = FLConfig(strategy="oracle", local_iterations=3, batch_size=16)
    strategy = make_strategy("oracle", [0, 1, 2], config,
                             rng=np.random.default_rng(0))
    strategy.calibrate(devices, full_flops=23e6, full_params=857_738)
    ratios = strategy.select_ratios(0)
    assert ratios[0] == 0.0
    assert ratios[1] == 0.0
    assert 0.0 < ratios[2] <= strategy.max_ratio


def test_oracle_equalises_expected_times():
    devices = _mixed_devices()
    config = FLConfig(strategy="oracle", local_iterations=3, batch_size=16)
    strategy = make_strategy("oracle", [0, 1, 2], config,
                             rng=np.random.default_rng(0))
    strategy.calibrate(devices, full_flops=23e6, full_params=857_738)
    ratios = strategy.select_ratios(0)
    times = {
        d.device_id: strategy._expected_time(d, ratios[d.device_id])
        for d in devices
    }
    target = times[0]  # fast workers run unpruned at the median
    # the slow worker lands near the median (within the max_ratio cap)
    assert times[2] <= strategy._expected_time(devices[2], 0.0)
    assert times[2] == pytest.approx(target, rel=0.25) or \
        ratios[2] == pytest.approx(strategy.max_ratio, abs=1e-3)


def test_oracle_runs_end_to_end():
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    task = ClassificationTask(dataset, "cnn")
    devices = make_scenario_devices("high", np.random.default_rng(5))
    config = FLConfig(strategy="oracle", max_rounds=3, local_iterations=2,
                      batch_size=8, seed=2)
    history = run_federated_training(task, devices, config)
    assert history.final_metric() is not None
    # the oracle personalises: not every worker shares one ratio
    ratios = history.rounds[-1].ratios
    assert len(set(np.round(list(ratios.values()), 4))) > 1


def test_oracle_capability_row_lacks_convergence_guarantee():
    assert OracleStrategy.capabilities.convergence_guarantee is False
