"""Live-membership plumbing: churn-safe dispatch queue, strategy
register/retire, and churn x client-sampling determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Dispatch
from repro.fl.runner import run_federated_training
from repro.fl.schedulers import DispatchQueue
from repro.fl.strategies import make_strategy
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices
from repro.simulation.timing import RoundCosts
from repro.verify.differential import normalised_history_bytes


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


def _dispatch(wid: int, finish: float) -> Dispatch:
    return Dispatch(worker_id=wid, ratio=0.0, plan=None, submodel=None,
                    dispatched_state={}, residual=None, tau=1,
                    costs=RoundCosts(computation_s=finish,
                                     download_s=0.0, upload_s=0.0))


# ----------------------------------------------------------------------
# DispatchQueue under churn
# ----------------------------------------------------------------------
def test_queue_discard_skips_stale_heap_entries():
    queue = DispatchQueue()
    for wid, finish in ((0, 1.0), (1, 2.0), (2, 3.0)):
        queue.add(_dispatch(wid, finish))
    assert queue.discard(0).worker_id == 0
    assert queue.discard(0) is None    # nothing outstanding any more
    assert len(queue) == 2
    assert 0 not in queue
    # the discarded entry is invisible to every consumer
    assert queue.earliest_finish() == pytest.approx(2.0)
    assert [d.worker_id for d in queue.pop_first(5)] == [1, 2]


def test_queue_discard_then_readd_uses_fresh_entry():
    queue = DispatchQueue()
    queue.add(_dispatch(0, 5.0))
    queue.discard(0)
    queue.add(_dispatch(0, 1.0))       # rejoin, earlier finish
    assert queue.earliest_finish() == pytest.approx(1.0)
    arrivals = queue.pop_until(1.5)
    assert [d.worker_id for d in arrivals] == [0]
    assert arrivals[0].finish_time == pytest.approx(1.0)
    assert len(queue) == 0


def test_queue_pop_until_ignores_discarded():
    queue = DispatchQueue()
    queue.add(_dispatch(0, 1.0))
    queue.add(_dispatch(1, 1.5))
    queue.discard(1)
    assert [d.worker_id for d in queue.pop_until(2.0)] == [0]


# ----------------------------------------------------------------------
# strategy register/retire
# ----------------------------------------------------------------------
def _fedmp(worker_ids, rng):
    config = FLConfig(strategy="fedmp", local_iterations=2)
    return make_strategy("fedmp", worker_ids, config, rng=rng)


def test_register_known_worker_is_a_no_op(rng):
    strategy = _fedmp([0, 1, 2], rng)
    agents = dict(strategy.agents)
    state = strategy.rng.bit_generator.state
    strategy.register_worker(1)
    assert strategy.agents == agents
    # critically: no RNG was consumed, so a reconnect never shifts the
    # deterministic stream positions of a running service
    assert strategy.rng.bit_generator.state == state


def test_register_new_worker_mints_agent(rng):
    strategy = _fedmp([0, 1], rng)
    strategy.register_worker(5)
    assert 5 in strategy.worker_ids
    assert 5 in strategy.agents


def test_retire_parks_agent_for_rejoin(rng):
    strategy = _fedmp([0, 1, 2], rng)
    agent = strategy.agents[2]
    strategy.retire_worker(2)
    assert 2 not in strategy.worker_ids
    strategy.register_worker(2)
    # the parked agent -- its learned statistics -- is reused verbatim
    assert strategy.agents[2] is agent
    assert 2 in strategy.worker_ids


def test_retire_with_pending_play_abandons_it(rng):
    strategy = _fedmp([0, 1, 2], rng)
    strategy.select_ratios(0)
    strategy.retire_worker(2)
    # worker 2's agent must be selectable again after a rejoin
    strategy.register_worker(2)
    strategy.select_ratios(1, worker_ids=[2])


# ----------------------------------------------------------------------
# churn x client sampling determinism
# ----------------------------------------------------------------------
def test_churn_with_client_sampling_is_deterministic(task):
    devices = make_scenario_devices("medium", np.random.default_rng(7))

    def run():
        config = FLConfig(
            strategy="fedmp", max_rounds=4, local_iterations=2,
            batch_size=8, lr=0.05, eval_every=2, seed=11,
            churn_leave_prob=0.3, churn_rejoin_after=1,
            clients_per_round=4,
        )
        return run_federated_training(task, devices, config)

    first, second = run(), run()
    assert (normalised_history_bytes(first)
            == normalised_history_bytes(second))
    # the sampling cap really bit: nobody ever exceeds it
    assert all(len(record.completion_times) <= 4
               for record in first.rounds)
