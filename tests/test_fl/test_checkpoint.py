"""Checkpoint/resume: format safety and round-trip fidelity.

Three layers of guarantees:

- **container format** -- bad magic, unknown versions and truncated
  payloads fail with typed errors before any pickle runs;
- **round-trip fidelity** (property tests) -- for every registry
  model, ``restore(save(state))`` reproduces the state bitwise:
  state dict, every RNG stream (engine, per-worker, RNG-bearing
  modules), E-UCB bandit state (signature + clean consistency
  report), error-feedback memory mass;
- **resume byte-identity** -- a run resumed from a mid-run checkpoint
  finishes with a normalised history byte-identical to the
  uninterrupted run's, under all three schedulers and both executors.
"""

from __future__ import annotations

import struct
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.setups import make_bench_task, make_devices
from repro.fl.checkpoint import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointError,
    CheckpointVersionError,
    capture_engine_state,
    decode_checkpoint,
    encode_checkpoint,
    latest_checkpoint,
    load_checkpoint,
    resolve_checkpoint,
    save_checkpoint,
)
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.hooks import CommVolumeHook, TimingHook
from repro.fl.runner import run_federated_training
from repro.pruning.error import state_mass
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.verify.differential import normalised_history_bytes

SCHEDULER_OVERRIDES = {
    "sync": {},
    "async": {"async_m": 2},
    "semi_sync": {"semi_sync_deadline_s": 20.0},
}


def _hooks():
    return [TimingHook(), CommVolumeHook()]


def _setup(preset, scheduler="sync", workers=4, strategy="fedmp",
           seed=17, rounds=2, **overrides):
    bench = make_bench_task(preset)
    devices = make_devices("medium", count=workers)
    config = bench.make_config(
        strategy, max_rounds=rounds, seed=seed,
        **SCHEDULER_OVERRIDES[scheduler], **overrides,
    )
    return bench, devices, config


def _checkpoint_after_run(preset, scheduler="sync", strategy="fedmp",
                          seed=17, rounds=2, workers=4, **overrides):
    """Run to completion with per-round checkpoints; load the last one
    that still has rounds left to replay (next_round == rounds - 1)."""
    with tempfile.TemporaryDirectory() as tmp:
        bench, devices, config = _setup(
            preset, scheduler=scheduler, strategy=strategy, seed=seed,
            rounds=rounds, workers=workers,
            checkpoint_dir=str(Path(tmp) / "ck"), **overrides,
        )
        run_federated_training(bench.make_task(0.0), devices, config,
                               hooks=_hooks())
        checkpoint = load_checkpoint(
            Path(tmp) / "ck" / f"ckpt-{rounds - 1:06d}.ckpt"
        )
    return bench, devices, checkpoint


def _recapture(bench, devices, checkpoint):
    """Restore an engine from a checkpoint and capture it again."""
    engine = Engine.restore(bench.make_task(0.0), devices, checkpoint,
                            hooks=_hooks())
    try:
        resume = engine.take_resume(checkpoint.scheduler)
        payload = capture_engine_state(
            engine, checkpoint.scheduler, resume["next_round"],
            queue=resume["queue"],
        )
        strategy = engine.strategy
    finally:
        engine.close()
    return payload, strategy


def _assert_rng_equal(a, b, label):
    assert a == b, f"{label} RNG state drifted across restore"


def _assert_payload_roundtrip(original, restored):
    assert restored["next_round"] == original["next_round"]
    assert restored["config"] == original["config"]
    for stream in ("master", "extract", "churn", "sampling"):
        _assert_rng_equal(original["rng"][stream],
                          restored["rng"][stream], stream)
    assert set(original["model_state"]) == set(restored["model_state"])
    for key in original["model_state"]:
        before = original["model_state"][key]
        after = restored["model_state"][key]
        assert before.dtype == after.dtype, key
        assert np.array_equal(before, after), key
    assert original["module_rngs"] == restored["module_rngs"]
    assert set(original["workers"]) == set(restored["workers"])
    for worker_id in original["workers"]:
        before = original["workers"][worker_id]
        after = restored["workers"][worker_id]
        _assert_rng_equal(before["rng"], after["rng"],
                          f"worker {worker_id}")
        _assert_rng_equal(before["timing_rng"], after["timing_rng"],
                          f"worker {worker_id} timing")
        assert ("iterator" in before) == ("iterator" in after)
        if "iterator" in before:
            assert np.array_equal(before["iterator"]["order"],
                                  after["iterator"]["order"])
            assert before["iterator"]["cursor"] \
                == after["iterator"]["cursor"]
    assert original["history"].rounds == restored["history"].rounds
    assert original["prev_train_loss"] == restored["prev_train_loss"]


def _assert_bandit_roundtrip(original_strategy, restored_strategy):
    agents = getattr(original_strategy, "agents", None)
    if agents is None:
        return
    restored = restored_strategy.agents
    assert agents.keys() == restored.keys()
    for key in agents:
        assert agents[key].state_signature() \
            == restored[key].state_signature(), key
        assert restored[key].consistency_report() == [], key


def _assert_error_feedback_roundtrip(original, restored):
    assert set(original) == set(restored)
    for worker_id in original:
        before = original[worker_id].memory_snapshot()
        after = restored[worker_id].memory_snapshot()
        assert state_mass(before) == state_mass(after)
        assert set(before) == set(after)
        for key in before:
            assert np.array_equal(before[key], after[key]), key


# ----------------------------------------------------------------------
# container format
# ----------------------------------------------------------------------
def test_decode_rejects_bad_magic():
    with pytest.raises(CheckpointError, match="bad magic"):
        decode_checkpoint(b"NOTACKPT" + b"\x00" * 64)


def test_decode_rejects_short_data():
    with pytest.raises(CheckpointError, match="bad magic"):
        decode_checkpoint(MAGIC[:4])


def test_decode_rejects_unknown_version():
    data = encode_checkpoint({"format_version": FORMAT_VERSION})
    future = (MAGIC + struct.pack("<I", FORMAT_VERSION + 7)
              + data[len(MAGIC) + 4:])
    with pytest.raises(CheckpointVersionError,
                       match=f"version {FORMAT_VERSION + 7}"):
        decode_checkpoint(future)


def test_decode_rejects_truncated_payload():
    data = encode_checkpoint({"payload": list(range(1000))})
    with pytest.raises(CheckpointError, match="truncated or corrupt"):
        decode_checkpoint(data[:-20])


def test_encode_rejects_unpicklable_payload():
    with pytest.raises(CheckpointError, match="not picklable"):
        encode_checkpoint({"bad": lambda: None})


def test_roundtrip_through_file(tmp_path):
    payload = {"format_version": FORMAT_VERSION, "x": np.arange(5)}
    path = tmp_path / "ckpt-000003.ckpt"
    size = save_checkpoint(path, payload)
    assert path.stat().st_size == size
    checkpoint = load_checkpoint(path)
    assert checkpoint.version == FORMAT_VERSION
    assert np.array_equal(checkpoint.payload["x"], np.arange(5))
    assert checkpoint.path == path


def test_latest_checkpoint_picks_highest_round(tmp_path):
    assert latest_checkpoint(tmp_path) is None
    for round_index in (1, 12, 3):
        save_checkpoint(tmp_path / f"ckpt-{round_index:06d}.ckpt", {})
    (tmp_path / "ckpt-garbage.ckpt").write_bytes(b"junk")
    assert latest_checkpoint(tmp_path).name == "ckpt-000012.ckpt"


def test_resolve_checkpoint(tmp_path):
    with pytest.raises(CheckpointError, match="no ckpt-"):
        resolve_checkpoint(tmp_path)
    with pytest.raises(CheckpointError, match="does not exist"):
        resolve_checkpoint(tmp_path / "missing.ckpt")
    path = tmp_path / "ckpt-000002.ckpt"
    save_checkpoint(path, {})
    assert resolve_checkpoint(tmp_path) == path
    assert resolve_checkpoint(path) == path


def test_config_validates_checkpoint_cadence():
    with pytest.raises(ValueError, match="checkpoint_every"):
        FLConfig(strategy="fedmp", max_rounds=2, checkpoint_every=0)


# ----------------------------------------------------------------------
# round-trip fidelity (property tests over the model registry)
# ----------------------------------------------------------------------
@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       scheduler=st.sampled_from(sorted(SCHEDULER_OVERRIDES)))
def test_roundtrip_cnn_any_scheduler(seed, scheduler):
    bench, devices, checkpoint = _checkpoint_after_run(
        "cnn", scheduler=scheduler, seed=seed,
    )
    payload, strategy = _recapture(bench, devices, checkpoint)
    _assert_payload_roundtrip(checkpoint.payload, payload)
    _assert_bandit_roundtrip(checkpoint.payload["strategy"], strategy)


@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_roundtrip_alexnet_dropout_rngs(seed):
    """AlexNet carries Dropout modules with private RNG streams."""
    bench, devices, checkpoint = _checkpoint_after_run(
        "alexnet", seed=seed,
    )
    assert checkpoint.payload["module_rngs"], \
        "alexnet checkpoint should carry Dropout RNG states"
    payload, strategy = _recapture(bench, devices, checkpoint)
    _assert_payload_roundtrip(checkpoint.payload, payload)
    _assert_bandit_roundtrip(checkpoint.payload["strategy"], strategy)


@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_roundtrip_lstm_sequence_iterators(seed):
    bench, devices, checkpoint = _checkpoint_after_run(
        "lstm", seed=seed,
    )
    payload, strategy = _recapture(bench, devices, checkpoint)
    _assert_payload_roundtrip(checkpoint.payload, payload)
    _assert_bandit_roundtrip(checkpoint.payload["strategy"], strategy)


@settings(max_examples=2, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_roundtrip_flexcom_error_feedback(seed):
    """FlexCom banks compressed-upload residuals per worker; the
    restored memory must carry exactly the original mass, bitwise."""
    bench, devices, checkpoint = _checkpoint_after_run(
        "cnn", strategy="flexcom", seed=seed,
    )
    engine = Engine.restore(bench.make_task(0.0), devices, checkpoint,
                            hooks=_hooks())
    try:
        _assert_error_feedback_roundtrip(
            checkpoint.payload["error_feedback"], engine.error_feedback,
        )
    finally:
        engine.close()


@pytest.mark.parametrize("preset", ["vgg19", "resnet50"])
def test_roundtrip_large_models_at_construction(preset):
    """The deep registry models round-trip at construction time (no
    training rounds, to bound test runtime): the restored engine's
    capture equals the original capture bitwise."""
    bench, devices, config = _setup(preset, rounds=2, workers=2)
    engine = Engine(bench.make_task(0.0), devices, config,
                    hooks=_hooks())
    try:
        payload = capture_engine_state(engine, "sync", 0)
    finally:
        engine.close()
    checkpoint = decode_checkpoint(encode_checkpoint(payload))
    restored, strategy = _recapture(bench, devices, checkpoint)
    _assert_payload_roundtrip(payload, restored)
    _assert_bandit_roundtrip(payload["strategy"], strategy)


# ----------------------------------------------------------------------
# resume byte-identity (in-process)
# ----------------------------------------------------------------------
def _resume_matches_uninterrupted(scheduler, executor="serial",
                                  num_procs=None, rounds=4):
    bench, devices, config = _setup(
        "cnn", scheduler=scheduler, rounds=rounds,
        executor=executor, num_procs=num_procs,
    )
    baseline = run_federated_training(
        bench.make_task(0.0), devices, config, hooks=_hooks(),
    )
    baseline_bytes = normalised_history_bytes(baseline)

    with tempfile.TemporaryDirectory() as tmp:
        bench2, devices2, config2 = _setup(
            "cnn", scheduler=scheduler, rounds=rounds,
            executor=executor, num_procs=num_procs,
            checkpoint_dir=str(Path(tmp) / "ck"),
        )
        run_federated_training(bench2.make_task(0.0), devices2, config2,
                               hooks=_hooks())
        resumed = run_federated_training(
            bench2.make_task(0.0), devices2, None, hooks=_hooks(),
            resume_from=str(Path(tmp) / "ck" / "ckpt-000002.ckpt"),
        )
    assert normalised_history_bytes(resumed) == baseline_bytes


@pytest.mark.parametrize("scheduler", sorted(SCHEDULER_OVERRIDES))
def test_resume_is_byte_identical_serial(scheduler):
    _resume_matches_uninterrupted(scheduler)


def test_resume_is_byte_identical_process_executor():
    _resume_matches_uninterrupted("sync", executor="process",
                                  num_procs=2)


def test_resume_rejects_conflicting_config(tmp_path):
    bench, devices, config = _setup(
        "cnn", rounds=2, checkpoint_dir=str(tmp_path / "ck"),
    )
    run_federated_training(bench.make_task(0.0), devices, config,
                           hooks=_hooks())
    other = _setup("cnn", rounds=3)[2]
    with pytest.raises(CheckpointError, match="differs"):
        run_federated_training(bench.make_task(0.0), devices, other,
                               hooks=_hooks(),
                               resume_from=str(tmp_path / "ck"))


def test_resume_rejects_scheduler_mismatch(tmp_path):
    bench, devices, config = _setup(
        "cnn", scheduler="sync", rounds=2,
        checkpoint_dir=str(tmp_path / "ck"),
    )
    run_federated_training(bench.make_task(0.0), devices, config,
                           hooks=_hooks())
    checkpoint = load_checkpoint(latest_checkpoint(tmp_path / "ck"))
    engine = Engine.restore(bench.make_task(0.0), devices, checkpoint,
                            hooks=_hooks())
    try:
        with pytest.raises(CheckpointError, match="scheduler"):
            engine.take_resume("async")
    finally:
        engine.close()


def test_early_stop_checkpoint_resumes_as_noop(tmp_path):
    """A run that stops early records next_round == max_rounds, so a
    resume replays nothing and returns the same history."""
    bench, devices, config = _setup(
        "cnn", rounds=50, target_metric=0.05, eval_every=1,
        checkpoint_dir=str(tmp_path / "ck"),
    )
    history = run_federated_training(bench.make_task(0.0), devices,
                                     config, hooks=_hooks())
    assert len(history.rounds) < 50, "target should stop the run early"
    resumed = run_federated_training(
        bench.make_task(0.0), devices, None, hooks=_hooks(),
        resume_from=str(tmp_path / "ck"),
    )
    assert normalised_history_bytes(resumed) \
        == normalised_history_bytes(history)


def test_checkpoint_cadence_and_telemetry(tmp_path):
    telemetry = Telemetry(tracer=Tracer(),
                          metrics=MetricsRegistry(enabled=True))
    bench, devices, config = _setup(
        "cnn", rounds=4, checkpoint_dir=str(tmp_path / "ck"),
        checkpoint_every=3,
    )
    run_federated_training(bench.make_task(0.0), devices, config,
                           hooks=_hooks(), telemetry=telemetry)
    names = sorted(p.name for p in (tmp_path / "ck").glob("*.ckpt"))
    # cadence hits round 3; the final round always checkpoints
    assert names == ["ckpt-000003.ckpt", "ckpt-000004.ckpt"]
    written = sum(c.value for c in telemetry.metrics.counters
                  if c.name == "checkpoints_written_total")
    assert written == 2
    sizes = [g.value for g in telemetry.metrics.gauges
             if g.name == "checkpoint_bytes"]
    assert sizes and sizes[0] > 0
