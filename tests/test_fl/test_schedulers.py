"""Scheduler layer: semi-sync rounds, async record fix, deadline x churn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.hooks import RoundHook
from repro.fl.runner import run_federated_training
from repro.fl.schedulers import (
    AsynchronousScheduler,
    SemiSynchronousScheduler,
    SynchronousScheduler,
    make_scheduler,
)
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices("medium", np.random.default_rng(7))


def _config(**kwargs):
    base = dict(strategy="synfl", max_rounds=4, local_iterations=2,
                batch_size=8, lr=0.05, eval_every=2, seed=3)
    base.update(kwargs)
    return FLConfig(**base)


# ----------------------------------------------------------------------
# scheduler selection
# ----------------------------------------------------------------------
def test_auto_selection_from_legacy_knobs():
    assert isinstance(make_scheduler(_config()), SynchronousScheduler)
    assert isinstance(make_scheduler(_config(async_m=4)),
                      AsynchronousScheduler)
    assert isinstance(make_scheduler(_config(semi_sync_deadline_s=5.0)),
                      SemiSynchronousScheduler)


def test_explicit_selection():
    scheduler = make_scheduler(
        _config(scheduler="semi_sync", semi_sync_deadline_s=2.5)
    )
    assert isinstance(scheduler, SemiSynchronousScheduler)
    assert scheduler.deadline_s == 2.5


def test_config_rejects_inconsistent_scheduling():
    with pytest.raises(ValueError):
        _config(scheduler="async")              # needs async_m
    with pytest.raises(ValueError):
        _config(scheduler="semi_sync")          # needs a deadline
    with pytest.raises(ValueError):
        _config(scheduler="sync", async_m=4)    # conflicting knobs
    with pytest.raises(ValueError):
        _config(async_m=4, semi_sync_deadline_s=1.0)
    with pytest.raises(ValueError):
        _config(semi_sync_deadline_s=-1.0)
    with pytest.raises(ValueError):
        _config(scheduler="bulk")


# ----------------------------------------------------------------------
# semi-synchronous scheduling
# ----------------------------------------------------------------------
def test_semi_sync_carries_stragglers(task, devices):
    """A tight deadline leaves slow workers out of the round; their
    dispatches carry over instead of being discarded."""
    history = run_federated_training(
        task, devices,
        _config(semi_sync_deadline_s=6.0, max_rounds=5, jitter_sigma=0.0),
    )
    assert len(history.rounds) == 5
    assert history.final_metric() is not None
    carried = [record.carried_over for record in history.rounds]
    assert any(carried), "expected at least one round with stragglers"
    for record in history.rounds:
        # a carried-over worker did not contribute to this round
        assert not set(record.carried_over) & set(record.completion_times)
        # the round never stretches beyond the deadline while
        # stragglers remain
        if record.carried_over:
            assert record.round_time_s <= 6.0 + 1e-9


def test_semi_sync_stretches_when_nobody_arrives(task, devices):
    """A deadline shorter than every completion time still progresses:
    each round stretches to the earliest arrival."""
    history = run_federated_training(
        task, devices,
        _config(semi_sync_deadline_s=1e-3, max_rounds=3, jitter_sigma=0.0),
    )
    assert len(history.rounds) == 3
    for record in history.rounds:
        assert len(record.completion_times) >= 1
        assert record.round_time_s > 1e-3


def test_semi_sync_aggregates_everyone_given_slack(task, devices):
    """With a generous deadline the first round sees all workers."""
    history = run_federated_training(
        task, devices,
        _config(semi_sync_deadline_s=1e6, max_rounds=2),
    )
    assert len(history.rounds[0].completion_times) == len(devices)
    assert history.rounds[0].carried_over == []


def test_semi_sync_with_fedmp_and_weighted_aggregation(task, devices):
    """The new scheduler composes with E-UCB pruning and the weighted
    aggregator; non-IID shards give unequal sample counts."""
    non_iid = ClassificationTask(task.dataset, "cnn", non_iid_level=20.0)
    history = run_federated_training(
        non_iid, devices,
        _config(strategy="fedmp", sync_scheme="r2sp_weighted",
                semi_sync_deadline_s=6.0, max_rounds=5,
                strategy_kwargs={"warmup_rounds": 1}),
    )
    assert len(history.rounds) == 5
    assert history.final_metric() is not None
    # pruning ratios are being personalised within the deadline rounds
    later = [r for r in history.rounds[1:] if len(r.ratios) > 1]
    assert later


def test_semi_sync_survives_churn(task, devices):
    history = run_federated_training(
        task, devices,
        _config(semi_sync_deadline_s=6.0, max_rounds=6,
                churn_leave_prob=0.4, churn_rejoin_after=1),
    )
    assert len(history.rounds) == 6
    assert history.final_metric() is not None


# ----------------------------------------------------------------------
# async record regression (the ratios-of-the-next-round bug)
# ----------------------------------------------------------------------
def test_async_records_aggregated_ratios_not_next_round(task, devices):
    """Round r's record must report the ratios of the sub-models that
    were actually aggregated, not the freshly re-dispatched ones.  With
    a one-round warm-up every round-0 arrival trained an unpruned model
    (ratio 0), while the round-1 re-dispatches already carry non-zero
    ratios -- the old runner recorded those by mistake."""
    history = run_federated_training(
        task, devices,
        _config(strategy="fedmp", async_m=4, max_rounds=4,
                strategy_kwargs={"warmup_rounds": 1}),
    )
    first = history.rounds[0]
    assert len(first.ratios) == 4
    assert all(ratio == 0.0 for ratio in first.ratios.values())
    # recorded ratios always describe the arrivals that were aggregated
    for record in history.rounds:
        assert set(record.ratios) == set(record.completion_times)


# ----------------------------------------------------------------------
# deadline policy x churn interaction
# ----------------------------------------------------------------------
class AggregationAudit(RoundHook):
    """Captures which workers' contributions each round aggregated."""

    def __init__(self):
        self.aggregated = {}

    def on_aggregate(self, round_index, contributions):
        self.aggregated[round_index] = [
            contribution.worker_id for contribution in contributions
        ]


def test_deadline_policy_with_churn_aggregates_present_accepted(
        task, devices):
    """Deadline discarding over a churning membership must aggregate
    exactly the accepted, present workers -- and never KeyError on a
    churned-out worker."""
    audit = AggregationAudit()
    history = run_federated_training(
        task, devices,
        _config(max_rounds=6, deadline_quorum=0.5, deadline_multiplier=1.0,
                jitter_sigma=0.3, churn_leave_prob=0.4,
                churn_rejoin_after=1),
        hooks=[audit],
    )
    assert len(history.rounds) == 6
    all_ids = {device.device_id for device in devices}
    churn_seen = False
    for record in history.rounds:
        participants = set(record.completion_times)
        churn_seen = churn_seen or len(participants) < len(all_ids)
        aggregated = set(audit.aggregated[record.round_index])
        # aggregated == dispatched minus deadline-discarded, all present
        assert aggregated == participants - set(record.discarded)
        assert aggregated <= all_ids
        assert aggregated
    assert churn_seen, "churn never removed a worker; test is vacuous"
