"""Golden fast-vs-slow pin: the hot-path optimisations are bitwise-free.

The fast path (per-round dispatch cache + scatter-add aggregation with
the residual folded from one shared global snapshot) and the pre-PR
slow path (fresh plan/extraction per dispatch, full zero-expansion per
contribution, materialised residual models) must produce **identical**
global states and round records on a seeded run -- not merely close:
the optimisations reorder no floating-point operation that contributes
to the result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices

COMPARED_FIELDS = (
    "round_index", "sim_time_s", "round_time_s", "metric", "eval_loss",
    "train_loss",
)

SCHEDULES = {
    "sync": {},
    "async": dict(async_m=4),
}


def _run(fast: bool, **overrides):
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    task = ClassificationTask(dataset, "cnn")
    devices = make_scenario_devices("medium", np.random.default_rng(7))
    config = FLConfig(strategy="fedmp", sync_scheme="r2sp", max_rounds=2,
                      local_iterations=2, batch_size=8, lr=0.05,
                      eval_every=1, seed=11,
                      strategy_kwargs={"warmup_rounds": 1},
                      fast_path=fast, **overrides)
    engine = Engine(task, devices, config)
    if not fast:
        # reference dense aggregation: recover_state_dict per
        # contribution, exactly the pre-optimisation code path
        engine.aggregator.dense = True
    history = make_scheduler(config).run(engine)
    return engine.server.global_state, history


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_fast_path_bitwise_identical_to_slow_path(schedule):
    fast_state, fast_history = _run(True, **SCHEDULES[schedule])
    slow_state, slow_history = _run(False, **SCHEDULES[schedule])

    assert set(fast_state) == set(slow_state)
    for key in slow_state:
        assert fast_state[key].dtype == slow_state[key].dtype
        assert np.array_equal(fast_state[key], slow_state[key]), key

    assert len(fast_history.rounds) == len(slow_history.rounds)
    for fast_record, slow_record in zip(fast_history.rounds,
                                        slow_history.rounds):
        for field in COMPARED_FIELDS:
            # exact equality on purpose: bitwise reproducibility
            assert getattr(fast_record, field) == \
                getattr(slow_record, field), (schedule, field)
        assert fast_record.ratios == slow_record.ratios
