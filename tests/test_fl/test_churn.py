"""Worker churn: joins and leaves do not affect the workflow (V-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.runner import run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


def test_training_survives_churn(task):
    devices = make_scenario_devices("medium", np.random.default_rng(7))
    config = FLConfig(
        strategy="fedmp", max_rounds=4, local_iterations=2, batch_size=8,
        lr=0.05, eval_every=2, seed=3,
        churn_leave_prob=0.4, churn_rejoin_after=1,
    )
    history = run_federated_training(task, devices, config)
    assert len(history.rounds) == 4
    assert history.final_metric() is not None
    # at least one round ran with fewer than all workers
    participant_counts = {
        len(record.completion_times) for record in history.rounds
    }
    assert min(participant_counts) < len(devices)
    # every round still had at least one participant
    assert min(participant_counts) >= 1


def test_zero_churn_uses_all_workers(task):
    devices = make_scenario_devices("medium", np.random.default_rng(7))
    config = FLConfig(strategy="synfl", max_rounds=2, local_iterations=2,
                      batch_size=8, seed=3, churn_leave_prob=0.0)
    history = run_federated_training(task, devices, config)
    for record in history.rounds:
        assert len(record.completion_times) == len(devices)
