"""Crash conformance: SIGKILL mid-round, resume, byte-identical finish.

The in-process resume tests in ``test_checkpoint.py`` prove restore
fidelity under clean interruption.  This file proves the crash case:
a subprocess run is SIGKILLed *between* ``before_aggregate`` and the
history flush -- no teardown, no atexit, torn temp files allowed --
then a fresh process resumes from the last surviving checkpoint and
must finish with the exact bytes the uninterrupted run produces.

Each case shells out through ``python -m repro.verify.resume`` (the
same harness ``repro verify`` drives), so it also covers checkpoint
loading across process boundaries.
"""

from __future__ import annotations

import pytest

from repro.verify.resume import SCHEDULERS, differential_kill_and_resume


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_sigkill_resume_is_byte_identical(scheduler):
    (check,) = differential_kill_and_resume(
        rounds=3, kill_at=1, workers=4, schedulers=[scheduler],
    )
    assert check.crashed, check.detail
    assert check.resumed, check.detail
    assert check.history_identical, check.detail
    assert check.max_ulps == 0, check.detail
    assert check.passed
