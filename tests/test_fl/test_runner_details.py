"""Runner behaviour details beyond the main integration paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.runner import run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices("medium", np.random.default_rng(7))


def test_eval_every_skips_rounds(task, devices):
    config = FLConfig(strategy="synfl", max_rounds=4, local_iterations=1,
                      batch_size=8, eval_every=3, seed=1)
    history = run_federated_training(task, devices, config)
    metrics = [r.metric for r in history.rounds]
    assert metrics[0] is None
    assert metrics[1] is None
    assert metrics[2] is not None  # round index 2 -> (2+1) % 3 == 0
    assert metrics[3] is not None  # forced on the last round


def test_overhead_recorded_every_round(task, devices):
    config = FLConfig(strategy="fedmp", max_rounds=3, local_iterations=1,
                      batch_size=8, seed=1)
    history = run_federated_training(task, devices, config)
    assert all(r.overhead_s > 0 for r in history.rounds)
    assert history.mean_overhead() > 0


def test_round_ratios_recorded(task, devices):
    config = FLConfig(strategy="fedmp", max_rounds=3, local_iterations=1,
                      batch_size=8, seed=1,
                      strategy_kwargs={"warmup_rounds": 1})
    history = run_federated_training(task, devices, config)
    assert all(v == 0.0 for v in history.rounds[0].ratios.values())
    assert len(history.rounds[1].ratios) == len(devices)


def test_eval_max_samples_limits_cost(task, devices):
    config = FLConfig(strategy="synfl", max_rounds=2, local_iterations=1,
                      batch_size=8, seed=1, eval_max_samples=10)
    history = run_federated_training(task, devices, config)
    assert history.final_metric() is not None


def test_completion_times_reflect_device_speeds(task):
    """Cluster-C devices must post longer completion times than
    cluster-A devices in the same round."""
    rng = np.random.default_rng(3)
    from repro.simulation.cluster import make_scenario_devices as make

    devices = make({"A": 3, "C": 3}, rng)
    config = FLConfig(strategy="synfl", max_rounds=1, local_iterations=2,
                      batch_size=8, seed=1, jitter_sigma=0.0)
    history = run_federated_training(task, devices, config)
    times = history.rounds[0].completion_times
    a_ids = [d.device_id for d in devices if d.cluster == "A"]
    c_ids = [d.device_id for d in devices if d.cluster == "C"]
    mean_a = np.mean([times[i] for i in a_ids])
    mean_c = np.mean([times[i] for i in c_ids])
    assert mean_c > mean_a


def test_fedmp_round_times_shorter_after_warmup(task, devices):
    """Once pruning kicks in, FedMP's rounds get cheaper than its own
    unpruned warm-up round."""
    config = FLConfig(strategy="fedmp", max_rounds=5, local_iterations=2,
                      batch_size=8, seed=2, jitter_sigma=0.0,
                      strategy_kwargs={"warmup_rounds": 1,
                                       "max_ratio": 0.7})
    history = run_federated_training(task, devices, config)
    warmup_time = history.rounds[0].round_time_s
    later = [r.round_time_s for r in history.rounds[1:]]
    assert min(later) < warmup_time
