"""Dispatch fast path: per-epoch plan/sub-model cache semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import Telemetry


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=12, test_per_class=4,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices("medium", np.random.default_rng(7))


def _engine(task, devices, **kwargs):
    base = dict(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                max_rounds=2, local_iterations=1, batch_size=8,
                eval_every=10, seed=5)
    base.update(kwargs)
    config = FLConfig(**base)
    telemetry = Telemetry(metrics=MetricsRegistry())
    return Engine(task, devices, config, telemetry=telemetry)


def _counter_sum(engine, name, **labels):
    total = 0.0
    for counter in engine.telemetry.metrics.counters:
        if counter.name == name and all(
            str(counter.labels.get(k)) == str(v) for k, v in labels.items()
        ):
            total += counter.value
    return total


def test_same_ratio_dispatches_share_plan_and_submodel(task, devices):
    engine = _engine(task, devices)
    n = len(engine.worker_ids)
    for worker_id in engine.worker_ids:
        engine.dispatch(worker_id, 0.3, 0.0, round_index=0)
    assert _counter_sum(engine, "dispatch_cache_misses_total",
                        kind="plan") == 1
    assert _counter_sum(engine, "dispatch_cache_hits_total",
                        kind="plan") == n - 1
    assert _counter_sum(engine, "dispatch_cache_misses_total",
                        kind="submodel") == 1
    assert _counter_sum(engine, "dispatch_cache_hits_total",
                        kind="submodel") == n - 1
    assert _counter_sum(engine, "dispatch_alloc_saved_params_total") > 0


def test_cached_clones_are_independent_models(task, devices):
    engine = _engine(task, devices)
    first = engine.dispatch(engine.worker_ids[0], 0.3, 0.0, round_index=0)
    second = engine.dispatch(engine.worker_ids[1], 0.3, 0.0, round_index=0)
    assert first.submodel is not second.submodel
    assert first.plan is second.plan
    # identical pristine weights, but training one must not leak into
    # the other
    for key, value in first.submodel.state_dict().items():
        assert np.array_equal(value, second.submodel.state_dict()[key])
    engine.train(first, round_index=0)
    trained = first.submodel.state_dict()
    pristine = second.submodel.state_dict()
    assert any(
        not np.array_equal(trained[key], pristine[key]) for key in trained
    )


def test_aggregate_invalidates_the_cache(task, devices):
    engine = _engine(task, devices)
    dispatches = [
        engine.dispatch(worker_id, 0.3, 0.0, round_index=0)
        for worker_id in engine.worker_ids
    ]
    contributions = [
        engine.train(dispatch, round_index=0)[0] for dispatch in dispatches
    ]
    assert engine._plan_cache and engine._submodel_cache
    engine.aggregate(contributions, round_index=0)
    assert not engine._plan_cache
    assert not engine._submodel_cache
    assert engine._round_state is None
    # next round misses again (global model changed)
    engine.dispatch(engine.worker_ids[0], 0.3, 0.0, round_index=1)
    assert _counter_sum(engine, "dispatch_cache_misses_total",
                        kind="plan") == 2


def test_r2sp_round_shares_one_global_snapshot(task, devices):
    engine = _engine(task, devices, sync_scheme="r2sp")
    first = engine.dispatch(engine.worker_ids[0], 0.3, 0.0, round_index=0)
    second = engine.dispatch(engine.worker_ids[1], 0.3, 0.0, round_index=0)
    assert first.residual is None and second.residual is None
    assert first.global_state is second.global_state
    assert _counter_sum(engine, "dispatch_alloc_saved_arrays_total",
                        kind="residual") > 0


def test_slow_path_materialises_residuals(task, devices):
    engine = _engine(task, devices, sync_scheme="r2sp", fast_path=False)
    dispatch = engine.dispatch(engine.worker_ids[0], 0.3, 0.0, round_index=0)
    assert dispatch.residual is not None
    assert dispatch.global_state is None
    assert not engine._plan_cache and not engine._submodel_cache


def test_submodel_sharing_disabled_for_rng_bearing_models(devices):
    """Dropout draws a fresh seed per extracted clone, so sub-model
    sharing would change the RNG stream; only the plan may be cached."""
    from repro.data.text import make_synthetic_ptb
    from repro.fl.tasks import LanguageModelTask

    corpus = make_synthetic_ptb(vocab_size=40, train_tokens=2000,
                                valid_tokens=200, test_tokens=200,
                                rng=np.random.default_rng(1))
    lm_task = LanguageModelTask(corpus, seq_len=8, lm_batch_size=4,
                                model_kwargs={"embedding_dim": 8,
                                              "hidden_size": 12,
                                              "dropout": 0.2})
    config = FLConfig(strategy="fixed", strategy_kwargs={"ratio": 0.25},
                      max_rounds=1, local_iterations=1, batch_size=4, seed=2)
    engine = Engine(lm_task, devices, config)
    assert engine.fast_path
    assert not engine._share_submodels
    first = engine.dispatch(engine.worker_ids[0], 0.25, 0.0, round_index=0)
    second = engine.dispatch(engine.worker_ids[1], 0.25, 0.0, round_index=0)
    assert first.plan is second.plan          # plans carry no randomness
    assert first.submodel is not second.submodel
    assert not engine._submodel_cache


def test_compressed_upload_survives_ratio_changes(task, devices):
    """Regression: FlexCom-style compression combined with adaptive
    pruning used to crash in round 2 because the error-feedback memory
    was keyed in sub-model coordinates."""
    engine = _engine(task, devices, sync_scheme="bsp")
    worker_id = engine.worker_ids[0]
    for round_index, ratio in enumerate((0.3, 0.6, 0.0)):
        dispatch = engine.dispatch(worker_id, ratio, 0.0, round_index)
        trained = {
            key: value + 0.05
            for key, value in dispatch.dispatched_state.items()
        }
        uploaded = engine._compress_upload(
            worker_id, dispatch.dispatched_state, trained, 0.5, dispatch.plan
        )
        for key in trained:
            assert uploaded[key].shape == trained[key].shape
        engine._plan_cache.clear()
        engine._submodel_cache.clear()


def test_fast_path_round_matches_slow_path(task, devices):
    """One full synchronous round, fast vs slow engine: bitwise equal."""
    results = {}
    for fast in (True, False):
        engine = _engine(task, devices, sync_scheme="r2sp_weighted",
                         fast_path=fast)
        history = make_scheduler(engine.config).run(engine)
        results[fast] = (engine.server.global_state, history)
    fast_state, fast_history = results[True]
    slow_state, slow_history = results[False]
    for key in slow_state:
        assert np.array_equal(fast_state[key], slow_state[key]), key
    assert [r.train_loss for r in fast_history.rounds] == \
           [r.train_loss for r in slow_history.rounds]
