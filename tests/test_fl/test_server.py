"""Parameter-server aggregation: R2SP vs BSP semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.server import Contribution, ParameterServer
from repro.models import build_cnn
from repro.pruning import (
    build_pruning_plan,
    extract_submodel,
    residual_state_dict,
)


def _contribution(model, ratio, rng, with_residual=True, worker_id=0):
    plan = build_pruning_plan(model, ratio)
    sub = extract_submodel(model, plan, rng=rng)
    residual = residual_state_dict(model.state_dict(), plan) \
        if with_residual else None
    return Contribution(worker_id=worker_id, sub_state=sub.state_dict(),
                        plan=plan, residual=residual)


def test_r2sp_untrained_submodel_is_identity(rng):
    """Aggregating untouched sub-models under R2SP must reproduce the
    global model exactly -- the core R2SP invariant."""
    model = build_cnn(rng=rng)
    before = model.state_dict()
    server = ParameterServer(model)
    contributions = [
        _contribution(model, ratio, rng, worker_id=worker_id)
        for worker_id, ratio in enumerate((0.0, 0.3, 0.6))
    ]
    after = server.aggregate(contributions, scheme="r2sp")
    for key in before:
        assert np.allclose(after[key], before[key], atol=1e-6), key


def test_bsp_shrinks_pruned_positions(rng):
    """Without residual recovery, positions pruned by any worker lose
    mass (the degradation Fig. 7 demonstrates)."""
    model = build_cnn(rng=rng)
    before = model.state_dict()
    server = ParameterServer(model)
    contributions = [_contribution(model, 0.5, rng, with_residual=False)]
    after = server.aggregate(contributions, scheme="bsp")
    total_before = sum(np.abs(v).sum() for v in before.values())
    total_after = sum(np.abs(v).sum() for v in after.values())
    assert total_after < total_before


def test_r2sp_requires_residual(rng):
    model = build_cnn(rng=rng)
    server = ParameterServer(model)
    contribution = _contribution(model, 0.5, rng, with_residual=False)
    with pytest.raises(ValueError, match="residual"):
        server.aggregate([contribution], scheme="r2sp")


def test_empty_contributions_rejected(rng):
    server = ParameterServer(build_cnn(rng=rng))
    with pytest.raises(ValueError):
        server.aggregate([], scheme="r2sp")


def test_unknown_scheme_rejected(rng):
    model = build_cnn(rng=rng)
    server = ParameterServer(model)
    contribution = _contribution(model, 0.0, rng)
    with pytest.raises(ValueError):
        server.aggregate([contribution], scheme="asp")


def test_aggregation_is_mean_over_workers(rng):
    """With identity plans, aggregation is plain FedAvg averaging."""
    model = build_cnn(rng=rng)
    server = ParameterServer(model)
    plan = build_pruning_plan(model, 0.0)

    state_a = model.state_dict()
    state_b = {key: value + 2.0 for key, value in state_a.items()}
    zero_residual = {key: np.zeros_like(v) for key, v in state_a.items()}
    contributions = [
        Contribution(0, state_a, plan, residual=zero_residual),
        Contribution(1, state_b, plan, residual=zero_residual),
    ]
    after = server.aggregate(contributions, scheme="r2sp")
    for key in state_a:
        assert np.allclose(after[key], state_a[key] + 1.0, atol=1e-5)


def test_aggregate_updates_model_in_place(rng):
    model = build_cnn(rng=rng)
    server = ParameterServer(model)
    plan = build_pruning_plan(model, 0.0)
    shifted = {key: value + 1.0 for key, value in model.state_dict().items()}
    zero_res = {key: np.zeros_like(v) for key, v in shifted.items()}
    server.aggregate([Contribution(0, shifted, plan, zero_res)],
                     scheme="r2sp")
    assert np.allclose(
        server.global_state["fc2.bias"], shifted["fc2.bias"], atol=1e-6
    )
