"""``apply_resume_overrides``: explicit CLI flags override the
checkpointed config with a typed warning instead of being silently
ignored."""

from __future__ import annotations

import warnings

import pytest

from repro.fl.checkpoint import (
    Checkpoint,
    ResumeOverrideWarning,
    apply_resume_overrides,
)
from repro.fl.config import FLConfig


def _checkpoint(**config_kwargs) -> Checkpoint:
    config = FLConfig(strategy="fedmp", max_rounds=5, **config_kwargs)
    return Checkpoint(version=1, payload={"config": config})


def test_override_changes_config_and_warns():
    checkpoint = _checkpoint(clients_per_round=None)
    with pytest.warns(ResumeOverrideWarning) as caught:
        changed = apply_resume_overrides(checkpoint, clients_per_round=3)
    assert changed == ["clients_per_round"]
    assert checkpoint.config.clients_per_round == 3
    message = str(caught[0].message)
    assert "clients_per_round" in message
    assert "None" in message and "3" in message


def test_matching_override_is_silent_and_unchanged():
    checkpoint = _checkpoint(clients_per_round=4)
    before = checkpoint.config
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert apply_resume_overrides(checkpoint,
                                      clients_per_round=4) == []
    assert checkpoint.config is before


def test_multiple_overrides_all_named():
    checkpoint = _checkpoint()
    with pytest.warns(ResumeOverrideWarning) as caught:
        changed = apply_resume_overrides(checkpoint, clients_per_round=2,
                                         max_rounds=9)
    assert changed == ["clients_per_round", "max_rounds"]
    assert checkpoint.config.clients_per_round == 2
    assert checkpoint.config.max_rounds == 9
    message = str(caught[0].message)
    assert "clients_per_round" in message and "max_rounds" in message
