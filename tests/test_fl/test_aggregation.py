"""Aggregator classes: uniform and sample-count-weighted semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.aggregation import (
    AGGREGATORS,
    AggregationError,
    BSPAggregator,
    Contribution,
    DuplicateContributionError,
    EmptyRoundError,
    PoisonedUpdateError,
    R2SPAggregator,
    WeightedBSPAggregator,
    WeightedR2SPAggregator,
    make_aggregator,
)
from repro.fl.server import ParameterServer
from repro.telemetry import MetricsRegistry
from repro.models import build_cnn
from repro.pruning import (
    build_pruning_plan,
    extract_submodel,
    residual_state_dict,
)


def _identity_contribution(model, worker_id, shift, num_samples=1):
    """Full-model (ratio 0) contribution whose state is global + shift."""
    plan = build_pruning_plan(model, 0.0)
    state = {k: v + shift for k, v in model.state_dict().items()}
    residual = {k: np.zeros_like(v) for k, v in state.items()}
    return Contribution(worker_id=worker_id, sub_state=state, plan=plan,
                        residual=residual, num_samples=num_samples)


def _pruned_contribution(model, ratio, rng, num_samples=1, worker_id=0):
    plan = build_pruning_plan(model, ratio)
    sub = extract_submodel(model, plan, rng=rng)
    residual = residual_state_dict(model.state_dict(), plan)
    return Contribution(worker_id=worker_id, sub_state=sub.state_dict(),
                        plan=plan, residual=residual,
                        num_samples=num_samples)


def test_registry_covers_all_schemes():
    assert set(AGGREGATORS) == {
        "r2sp", "bsp", "r2sp_weighted", "bsp_weighted",
    }
    assert isinstance(make_aggregator("r2sp"), R2SPAggregator)
    assert isinstance(make_aggregator("bsp_weighted"), WeightedBSPAggregator)


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown aggregation scheme"):
        make_aggregator("asp")


def test_residual_requirements():
    assert R2SPAggregator.needs_residual
    assert WeightedR2SPAggregator.needs_residual
    assert not BSPAggregator.needs_residual
    assert not WeightedBSPAggregator.needs_residual


def test_uniform_matches_plain_mean(rng):
    model = build_cnn(rng=rng)
    template = model.state_dict()
    contributions = [
        _identity_contribution(model, 0, 0.0),
        _identity_contribution(model, 1, 2.0),
    ]
    after = R2SPAggregator().aggregate(contributions, template)
    for key in template:
        assert np.allclose(after[key], template[key] + 1.0, atol=1e-5)


def test_weighted_mean_uses_sample_counts(rng):
    """Weights 1 and 3 pull the average 3/4 of the way to worker 1."""
    model = build_cnn(rng=rng)
    template = model.state_dict()
    contributions = [
        _identity_contribution(model, 0, 0.0, num_samples=1),
        _identity_contribution(model, 1, 4.0, num_samples=3),
    ]
    after = WeightedR2SPAggregator().aggregate(contributions, template)
    for key in template:
        assert np.allclose(after[key], template[key] + 3.0, atol=1e-5)


def test_weighted_reduces_to_uniform_on_equal_shards(rng):
    model = build_cnn(rng=rng)
    template = model.state_dict()
    contributions = [
        _identity_contribution(model, 0, 0.0, num_samples=7),
        _identity_contribution(model, 1, 2.0, num_samples=7),
    ]
    uniform = R2SPAggregator().aggregate(contributions, template)
    weighted = WeightedR2SPAggregator().aggregate(contributions, template)
    for key in template:
        assert np.allclose(uniform[key], weighted[key], atol=1e-7)


def test_weighted_r2sp_identity_on_untrained_submodels(rng):
    """The R2SP invariant survives weighting: untrained sub-models with
    arbitrary sample counts aggregate back to the global model."""
    model = build_cnn(rng=rng)
    template = model.state_dict()
    contributions = [
        _pruned_contribution(model, ratio, rng, num_samples=count,
                             worker_id=worker_id)
        for worker_id, (ratio, count)
        in enumerate(((0.0, 2), (0.3, 9), (0.6, 4)))
    ]
    after = WeightedR2SPAggregator().aggregate(contributions, template)
    for key in template:
        assert np.allclose(after[key], template[key], atol=1e-6), key


def test_weighted_renormalises_over_participants(rng):
    """A partial round (one participant) returns that participant's
    model regardless of its absolute sample count."""
    model = build_cnn(rng=rng)
    template = model.state_dict()
    lone = _identity_contribution(model, 3, 1.5, num_samples=42)
    after = WeightedBSPAggregator().aggregate([lone], template)
    for key in template:
        assert np.allclose(after[key], template[key] + 1.5, atol=1e-5)


def test_empty_contributions_rejected(rng):
    with pytest.raises(ValueError, match="empty contribution"):
        R2SPAggregator().aggregate([], {})


def test_non_positive_weight_rejected(rng):
    model = build_cnn(rng=rng)
    bad = _identity_contribution(model, 0, 0.0, num_samples=0)
    with pytest.raises(ValueError, match="non-positive"):
        WeightedBSPAggregator().aggregate([bad], model.state_dict())


def test_zero_weight_contribution_is_skipped(rng):
    """Regression: an empty shard (num_samples=0) must not crash the
    round; the zero-weight contribution simply carries no signal."""
    model = build_cnn(rng=rng)
    template = model.state_dict()
    contributions = [
        _identity_contribution(model, 0, 0.0, num_samples=2),
        _identity_contribution(model, 1, 4.0, num_samples=2),
        _identity_contribution(model, 2, 100.0, num_samples=0),  # empty shard
    ]
    after = WeightedR2SPAggregator().aggregate(contributions, template)
    for key in template:
        assert np.allclose(after[key], template[key] + 2.0, atol=1e-5)


def test_all_zero_weights_rejected(rng):
    model = build_cnn(rng=rng)
    contributions = [
        _identity_contribution(model, i, 0.0, num_samples=0) for i in range(3)
    ]
    with pytest.raises(ValueError, match="non-positive"):
        WeightedBSPAggregator().aggregate(contributions, model.state_dict())


def test_negative_weight_rejected(rng):
    model = build_cnn(rng=rng)
    bad = _identity_contribution(model, 0, 0.0, num_samples=-3)
    with pytest.raises(ValueError, match="negative"):
        WeightedBSPAggregator().aggregate([bad], model.state_dict())


def _trained_pruned_contribution(model, worker_id, ratio, shift, rng,
                                 num_samples=1, materialise_residual=True):
    """Pruned contribution whose sub-state was 'trained' (shifted)."""
    plan = build_pruning_plan(model, ratio)
    sub = extract_submodel(model, plan, rng=rng)
    sub_state = {k: v + shift for k, v in sub.state_dict().items()}
    global_state = model.state_dict()
    residual = (residual_state_dict(global_state, plan)
                if materialise_residual else None)
    return Contribution(worker_id=worker_id, sub_state=sub_state, plan=plan,
                        residual=residual, num_samples=num_samples,
                        global_state=None if materialise_residual
                        else global_state)


@pytest.mark.parametrize("scheme", sorted(AGGREGATORS))
def test_scatter_path_matches_dense_path_bitwise(scheme, rng):
    """The in-place scatter-add fast path must reproduce the reference
    dense (zero-expansion) path bit for bit."""
    model = build_cnn(rng=rng)
    template = model.state_dict()
    extract_rng = np.random.default_rng(7)
    contributions = [
        _trained_pruned_contribution(model, i, ratio, shift, extract_rng,
                                     num_samples=count)
        for i, (ratio, shift, count) in enumerate(
            ((0.0, 0.125, 2), (0.3, -0.5, 9), (0.6, 1.0, 4))
        )
    ]
    dense_agg = make_aggregator(scheme)
    dense_agg.dense = True
    fast_agg = make_aggregator(scheme)
    dense = dense_agg.aggregate(contributions, template)
    fast = fast_agg.aggregate(contributions, template)
    assert set(dense) == set(fast)
    for key in dense:
        assert np.array_equal(dense[key], fast[key]), key


def test_global_state_residual_matches_materialised_residual(rng):
    """Folding the residual from the shared global snapshot equals the
    legacy per-contribution materialised residual, bit for bit."""
    model = build_cnn(rng=rng)
    template = model.state_dict()
    legacy = [
        _trained_pruned_contribution(model, i, ratio, shift,
                                     np.random.default_rng(11 + i))
        for i, (ratio, shift) in enumerate(((0.25, 0.5), (0.5, -0.25)))
    ]
    shared = [
        _trained_pruned_contribution(model, i, ratio, shift,
                                     np.random.default_rng(11 + i),
                                     materialise_residual=False)
        for i, (ratio, shift) in enumerate(((0.25, 0.5), (0.5, -0.25)))
    ]
    after_legacy = R2SPAggregator().aggregate(legacy, template)
    after_shared = R2SPAggregator().aggregate(shared, template)
    for key in template:
        assert np.array_equal(after_legacy[key], after_shared[key]), key


def test_missing_residual_rejected(rng):
    model = build_cnn(rng=rng)
    contribution = _identity_contribution(model, 0, 0.0)
    contribution.residual = None
    with pytest.raises(ValueError, match="residual"):
        WeightedR2SPAggregator().aggregate([contribution],
                                           model.state_dict())


def test_server_default_aggregator_is_r2sp(rng):
    server = ParameterServer(build_cnn(rng=rng))
    assert isinstance(server.aggregator, R2SPAggregator)


def test_server_apply_uses_injected_aggregator(rng):
    model = build_cnn(rng=rng)
    before = model.state_dict()
    server = ParameterServer(model, aggregator=WeightedR2SPAggregator())
    contributions = [
        _identity_contribution(model, 0, 0.0, num_samples=1),
        _identity_contribution(model, 1, 4.0, num_samples=3),
    ]
    after = server.apply(contributions)
    for key in before:
        assert np.allclose(after[key], before[key] + 3.0, atol=1e-5)


# ----------------------------------------------------------------------
# typed failures: duplicates and NaN/Inf-poisoned uploads
# ----------------------------------------------------------------------
def _poison(contribution, value=np.nan):
    key = sorted(contribution.sub_state)[0]
    contribution.sub_state[key] = contribution.sub_state[key].copy()
    contribution.sub_state[key].reshape(-1)[0] = value
    return contribution


def test_duplicate_worker_ids_rejected(rng):
    model = build_cnn(rng=rng)
    contributions = [
        _identity_contribution(model, 7, 0.0),
        _identity_contribution(model, 7, 1.0),
    ]
    with pytest.raises(DuplicateContributionError, match="worker 7"):
        R2SPAggregator().aggregate(contributions, model.state_dict())


@pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
def test_poisoned_update_rejected_by_default(bad, rng):
    model = build_cnn(rng=rng)
    contributions = [
        _identity_contribution(model, 0, 0.0),
        _poison(_identity_contribution(model, 1, 1.0), bad),
    ]
    with pytest.raises(PoisonedUpdateError, match="worker 1"):
        R2SPAggregator().aggregate(contributions, model.state_dict())


def test_poisoned_update_skipped_and_counted_under_skip_policy(rng):
    model = build_cnn(rng=rng)
    template = model.state_dict()
    clean = [
        _identity_contribution(model, 0, 0.0),
        _identity_contribution(model, 1, 2.0),
    ]
    poisoned = clean + [_poison(_identity_contribution(model, 2, 9.0))]
    aggregator = make_aggregator("r2sp", nan_policy="skip")
    aggregator.metrics = MetricsRegistry(enabled=True)
    after = aggregator.aggregate(poisoned, template)
    expected = R2SPAggregator().aggregate(clean, template)
    for key in template:
        assert np.array_equal(after[key], expected[key])
    skipped = [c for c in aggregator.metrics.counters
               if c.name == "poisoned_updates_total"]
    assert len(skipped) == 1
    assert skipped[0].value == 1
    assert skipped[0].labels == {"worker": 2}


def test_all_poisoned_contributions_leave_an_empty_round(rng):
    model = build_cnn(rng=rng)
    aggregator = make_aggregator("r2sp", nan_policy="skip")
    with pytest.raises(EmptyRoundError):
        aggregator.aggregate(
            [_poison(_identity_contribution(model, 0, 0.0))],
            model.state_dict(),
        )


def test_nan_policy_off_propagates_poison(rng):
    """Documents what the guard protects against: without the scan a
    single NaN reaches the aggregated global state."""
    model = build_cnn(rng=rng)
    aggregator = make_aggregator("r2sp", nan_policy="off")
    after = aggregator.aggregate(
        [
            _identity_contribution(model, 0, 0.0),
            _poison(_identity_contribution(model, 1, 1.0)),
        ],
        model.state_dict(),
    )
    assert any(np.isnan(value).any() for value in after.values())


def test_make_aggregator_validates_nan_policy():
    with pytest.raises(ValueError, match="nan_policy"):
        make_aggregator("r2sp", nan_policy="ignore")


def test_typed_errors_remain_value_errors():
    for error in (AggregationError, EmptyRoundError,
                  DuplicateContributionError, PoisonedUpdateError):
        assert issubclass(error, ValueError)
