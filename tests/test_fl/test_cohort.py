"""Cohort-sharded rounds: bitwise parity, cache conformance, sampling.

The cohort path (DESIGN.md section 3.6) is specified to be a pure
execution-plan change: bucketing workers by (ratio, cluster), sharing
one extracted sub-model per bucket, vectorising local training and
accumulating per-cohort float64 partial sums must all be bitwise
invisible next to dispatching and accumulating each member alone.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask
from repro.io import load_history, save_history
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import Telemetry
from repro.verify.differential import (
    capture_run,
    compare_state_sequences,
    normalised_history_bytes,
)

SCHEDULER_CONFIGS = {
    "sync": {},
    "async": {"async_m": 3},
    "semi_sync": {"semi_sync_deadline_s": 30.0},
}


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=12, test_per_class=4,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices("medium", np.random.default_rng(7))


def _config(**kwargs):
    base = dict(strategy="fedmp", max_rounds=3, local_iterations=1,
                batch_size=8, eval_every=10, seed=11,
                strategy_kwargs={"warmup_rounds": 1})
    base.update(kwargs)
    return FLConfig(**base)


def _counter_sum(telemetry, name, **labels):
    total = 0.0
    for counter in telemetry.metrics.counters:
        if counter.name == name and all(
            str(counter.labels.get(k)) == str(v) for k, v in labels.items()
        ):
            total += counter.value
    return total


# ----------------------------------------------------------------------
# 0-ULP parity across all three schedulers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", sorted(SCHEDULER_CONFIGS))
def test_cohort_path_is_bitwise_identical(task, devices, scheduler):
    config = _config(**SCHEDULER_CONFIGS[scheduler])
    _, cohort = capture_run(task, devices,
                            replace(config, cohort_rounds="on"))
    _, member = capture_run(task, devices,
                            replace(config, cohort_rounds="off"))
    report = compare_state_sequences(cohort, member, tolerance_ulps=0,
                                     label_a="cohort", label_b="member")
    assert report.passed, report.describe()


def test_cohort_histories_match_member_histories(task, devices):
    config = _config()
    history_cohort, _ = capture_run(task, devices,
                                    replace(config, cohort_rounds="on"))
    history_member, _ = capture_run(task, devices,
                                    replace(config, cohort_rounds="off"))
    assert normalised_history_bytes(history_cohort) \
        == normalised_history_bytes(history_member)


def test_cohort_mode_requires_fast_path(task, devices):
    with pytest.raises(ValueError):
        Engine(task, devices,
               _config(cohort_rounds="on", fast_path=False))


# ----------------------------------------------------------------------
# dispatch-cache clear / counter conformance per scheduler
# ----------------------------------------------------------------------
def _run_with_metrics(task, devices, config):
    telemetry = Telemetry(metrics=MetricsRegistry())
    engine = Engine(task, devices, config, telemetry=telemetry)
    try:
        make_scheduler(config).run(engine)
    finally:
        engine.close()
    return engine, telemetry


@pytest.mark.parametrize("scheduler", sorted(SCHEDULER_CONFIGS))
def test_cohort_cache_counters_conform(task, devices, scheduler):
    rounds = 3
    config = _config(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                     max_rounds=rounds, cohort_rounds="on",
                     **SCHEDULER_CONFIGS[scheduler])
    engine, telemetry = _run_with_metrics(task, devices, config)
    cohorts = _counter_sum(telemetry, "dispatch_cohorts_total")
    assert cohorts > 0
    # every cohort bucket performs exactly one plan and one sub-model
    # cache lookup
    for kind in ("plan", "submodel"):
        hits = _counter_sum(telemetry, "dispatch_cache_hits_total",
                            kind=kind)
        misses = _counter_sum(telemetry, "dispatch_cache_misses_total",
                              kind=kind)
        assert hits + misses == cohorts
        # aggregation invalidates the caches, so a fixed 0.3 ratio must
        # re-miss at least once per aggregated round
        assert misses >= rounds
    # a fixed ratio buckets each round into one cohort per cluster, so
    # the member tally is a proper multiple of the bucket tally
    members = _counter_sum(telemetry, "dispatch_cohort_members_total")
    assert members >= cohorts
    assert members % len(devices) == 0 or members > len(devices)


def test_sync_run_leaves_caches_cleared(task, devices):
    config = _config(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                     cohort_rounds="on")
    engine, _ = _run_with_metrics(task, devices, config)
    # the final aggregation invalidated everything; nothing re-primed it
    assert engine._plan_cache == {}
    assert engine._submodel_cache == {}
    assert engine._round_state is None


# ----------------------------------------------------------------------
# per-round client sampling
# ----------------------------------------------------------------------
def test_client_sampling_is_deterministic(task, devices):
    config = _config(clients_per_round=4, history_detail="member")
    history_a, states_a = capture_run(task, devices, config)
    history_b, states_b = capture_run(task, devices, config)
    assert normalised_history_bytes(history_a) \
        == normalised_history_bytes(history_b)
    report = compare_state_sequences(states_a, states_b, tolerance_ulps=0)
    assert report.passed, report.describe()
    for record in history_a.rounds:
        assert len(record.ratios) == 4


def test_sampling_disabled_when_fleet_fits(task, devices):
    base = _config()
    history_all, _ = capture_run(task, devices, base)
    history_cap, _ = capture_run(
        task, devices, replace(base, clients_per_round=len(devices)),
    )
    # m >= fleet draws nothing from the sampling stream, so the runs
    # are byte-identical
    assert normalised_history_bytes(history_all) \
        == normalised_history_bytes(history_cap)


def test_sampled_rounds_count_sampled_clients(task, devices):
    config = _config(clients_per_round=4, cohort_rounds="on")
    _, telemetry = _run_with_metrics(task, devices, config)
    assert _counter_sum(telemetry, "clients_sampled_total") \
        == 4 * config.max_rounds


# ----------------------------------------------------------------------
# history detail: per-cohort aggregates instead of O(fleet) entries
# ----------------------------------------------------------------------
def test_cohort_history_detail_shrinks_records_and_roundtrips(
        task, tmp_path):
    fleet = make_scenario_devices({"A": 12, "B": 12},
                                  np.random.default_rng(3))
    # a shared ratio is what makes cohorts coarse: 24 workers collapse
    # into one (ratio, cluster) bucket per cluster
    base = _config(max_rounds=2, cohort_rounds="on", strategy="fixed",
                   strategy_kwargs={"ratio": 0.3})
    history_member, _ = capture_run(
        task, fleet, replace(base, history_detail="member"))
    history_cohort, _ = capture_run(
        task, fleet, replace(base, history_detail="cohort"))

    member_path = tmp_path / "member.json"
    cohort_path = tmp_path / "cohort.json"
    save_history(history_member, member_path)
    save_history(history_cohort, cohort_path)
    # cohort detail stores one aggregate per (ratio, cluster) bucket,
    # not one entry per worker: the file must shrink on a 24-worker
    # fleet with two clusters
    assert cohort_path.stat().st_size < member_path.stat().st_size

    loaded = load_history(cohort_path)
    for record in loaded.rounds:
        assert record.ratios == {}
        assert record.completion_times == {}
        assert record.cohorts, "cohort detail lost in the roundtrip"
        assert sum(c["members"] for c in record.cohorts) == len(fleet)
        for cohort in record.cohorts:
            assert set(cohort) == {"ratio", "cluster", "members",
                                   "num_samples", "time_min",
                                   "time_mean", "time_max"}
    # member detail keeps the legacy per-worker entries
    for record in load_history(member_path).rounds:
        assert len(record.ratios) == len(fleet)
        assert record.cohorts is None
