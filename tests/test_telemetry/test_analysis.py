"""Trace analytics: tree building, breakdowns, critical paths, diffs."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    build_tree,
    critical_path,
    diff_traces,
    folded_stacks,
    load_trace,
    phase_breakdown,
    round_summaries,
    round_trends,
)

_NEXT_ID = iter(range(1, 10_000))


def span(name, start, duration, parent=None, **attrs):
    """A trace record shaped exactly like JsonlSink output."""
    return {
        "kind": "span",
        "name": name,
        "span_id": next(_NEXT_ID),
        "parent_id": parent["span_id"] if parent else None,
        "start_s": start,
        "duration_s": duration,
        "attrs": attrs,
    }


def make_round(index, start, *, train_s, agg_s, eval_s):
    """One round span with dispatch/train/aggregate/eval children."""
    round_span = span("round", start, train_s + agg_s + eval_s + 0.02,
                      round=index)
    children = [
        span("dispatch_cohort", start, 0.01, parent=round_span,
             ratio=0.3, cluster="A", members=64),
        span("cohort_train", start + 0.01, train_s, parent=round_span,
             path="vectorised", plan_sig="abc123def456"),
        span("aggregate", start + 0.01 + train_s, agg_s,
             parent=round_span),
        span("eval", start + 0.01 + train_s + agg_s, eval_s,
             parent=round_span, round=index),
    ]
    return [round_span] + children


def make_trace(train_s=0.5, agg_s=0.1, eval_s=0.2, rounds=3):
    records = []
    start = 0.0
    for index in range(rounds):
        batch = make_round(index, start,
                           train_s=train_s, agg_s=agg_s, eval_s=eval_s)
        records.extend(batch)
        start = batch[0]["start_s"] + batch[0]["duration_s"]
    # children before parents, as the emit-on-close sink writes them
    return sorted(records, key=lambda r: r["parent_id"] is None)


def test_build_tree_reconstructs_forest():
    roots = build_tree(make_trace())
    assert [node.name for node in roots] == ["round"] * 3
    assert [child.name for child in roots[0].children] == [
        "dispatch_cohort", "cohort_train", "aggregate", "eval"]
    assert roots[0].attrs["round"] == 0


def test_orphaned_spans_become_roots():
    records = make_trace()
    # drop round 0's parent span: its children must still surface
    dropped = next(r for r in records
                   if r["name"] == "round" and r["attrs"]["round"] == 0)
    records = [r for r in records if r is not dropped]
    roots = build_tree(records)
    names = sorted(node.name for node in roots)
    assert names.count("round") == 2
    assert "cohort_train" in names and "eval" in names


def test_phase_breakdown_self_time_excludes_children():
    roots = build_tree(make_trace(train_s=0.5, agg_s=0.1, eval_s=0.2))
    breakdown = {entry["phase"]: entry for entry in phase_breakdown(roots)}
    assert breakdown["cohort_train"]["count"] == 3
    assert breakdown["cohort_train"]["total_s"] == pytest.approx(1.5)
    # round self time is the untracked gap (0.02s minus the 0.01s
    # dispatch child), not the full duration
    assert breakdown["round"]["self_s"] == pytest.approx(0.03)
    assert breakdown["round"]["total_s"] == pytest.approx(3 * 0.82)
    # ordering: descending total
    totals = [entry["total_s"] for entry in phase_breakdown(roots)]
    assert totals == sorted(totals, reverse=True)


def test_phase_breakdown_single_round_scope():
    roots = build_tree(make_trace())
    scoped = {entry["phase"]: entry
              for entry in phase_breakdown(roots, round_index=1)}
    assert scoped["cohort_train"]["count"] == 1
    assert scoped["round"]["count"] == 1


def test_critical_path_follows_longest_child():
    roots = build_tree(make_trace(train_s=0.5, agg_s=0.1, eval_s=0.2))
    path = critical_path(roots[0])
    assert [step["name"] for step in path] == ["round", "cohort_train"]
    assert path[0]["share"] == pytest.approx(1.0)
    assert path[1]["share"] == pytest.approx(0.5 / 0.82)
    # cohort labels ride along for attribution
    assert path[1]["attrs"]["path"] == "vectorised"
    assert path[1]["attrs"]["plan_sig"] == "abc123def456"


def test_round_summaries_and_trends():
    roots = build_tree(make_trace(rounds=4))
    summaries = round_summaries(roots)
    assert [summary["round"] for summary in summaries] == [0, 1, 2, 3]
    assert all(summary["critical_leaf"] == "cohort_train"
               for summary in summaries)
    assert summaries[0]["untracked_s"] == pytest.approx(0.01)
    trends = round_trends(roots)
    assert trends["rounds"]["count"] == 4
    assert trends["rounds"]["p50_s"] == pytest.approx(0.82)
    assert trends["phases"]["eval"]["p99_s"] == pytest.approx(0.2)


def test_diff_ranks_injected_slowdown_first():
    baseline = make_trace(train_s=0.5, agg_s=0.1, eval_s=0.2)
    slowed = make_trace(train_s=0.5, agg_s=0.9, eval_s=0.2)
    rows = diff_traces(baseline, slowed)
    # the parent round span absorbs the same slowdown, so both lead
    assert {rows[0]["phase"], rows[1]["phase"]} == {"aggregate", "round"}
    leaf_rows = [row for row in rows if row["phase"] != "round"]
    assert leaf_rows[0]["phase"] == "aggregate"
    assert leaf_rows[0]["delta_total_s"] == pytest.approx(3 * 0.8)
    assert leaf_rows[0]["ratio"] == pytest.approx(9.0)
    # untouched phases report ~1x
    eval_row = next(row for row in rows if row["phase"] == "eval")
    assert eval_row["ratio"] == pytest.approx(1.0)


def test_diff_surfaces_added_and_removed_phases():
    baseline = make_trace()
    candidate = [r for r in make_trace() if r["name"] != "aggregate"]
    rows = diff_traces(baseline, candidate)
    removed = next(row for row in rows if row["phase"] == "aggregate")
    assert removed["count_b"] == 0 and removed["delta_total_s"] < 0
    assert removed["ratio"] == 0.0


def test_folded_stacks_integer_microseconds():
    roots = build_tree(make_trace(rounds=2))
    lines = folded_stacks(roots).strip().splitlines()
    folded = dict(line.rsplit(" ", 1) for line in lines)
    assert folded["round;cohort_train"] == str(2 * 500_000)
    assert folded["round"] == str(2 * 10_000)  # self time only
    assert all(int(count) > 0 for count in folded.values())


def test_load_trace_tolerates_torn_tail_only(tmp_path):
    records = make_trace()
    path = tmp_path / "trace.jsonl"
    payload = "\n".join(json.dumps(r) for r in records)
    path.write_text(payload + '\n{"kind": "span", "name": "to', )
    loaded = load_trace(path)
    assert len(loaded) == len(records)

    corrupt = tmp_path / "corrupt.jsonl"
    lines = payload.splitlines()
    lines[2] = lines[2][:10]
    corrupt.write_text("\n".join(lines))
    with pytest.raises(ValueError, match="line 3"):
        load_trace(corrupt)
