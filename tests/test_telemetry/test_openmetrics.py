"""OpenMetrics rendering: spec compliance proven by a strict parser."""

from __future__ import annotations

import math

import pytest

from repro.telemetry import (
    MetricsRegistry,
    OpenMetricsParseError,
    parse_openmetrics,
    render_openmetrics,
)
from repro.telemetry.openmetrics import (
    sanitize_label_name,
    sanitize_metric_name,
)


def populated_registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.counter("dispatches_total", worker=3).inc(12)
    metrics.counter("dispatches_total", worker=4).inc(1)
    metrics.counter("wire_bytes_total").inc(1024)
    metrics.gauge("fleet_sampled_fraction").set(0.25)
    metrics.gauge("cohort_members", ratio=0.3, cluster="A").set(128)
    hist = metrics.histogram("round_time_s", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.7, 5.0):
        hist.observe(value)
    return metrics


def test_roundtrip_through_parser():
    metrics = populated_registry()
    families = parse_openmetrics(render_openmetrics(metrics))

    assert families["dispatches"].type == "counter"
    assert families["dispatches"].sample_value(
        "dispatches_total", worker="3") == 12
    assert families["wire_bytes"].sample_value("wire_bytes_total") == 1024

    assert families["fleet_sampled_fraction"].type == "gauge"
    assert families["fleet_sampled_fraction"].sample_value(
        "fleet_sampled_fraction") == 0.25
    assert families["cohort_members"].sample_value(
        "cohort_members", ratio="0.3", cluster="A") == 128

    hist = families["round_time_s"]
    assert hist.type == "histogram"
    assert hist.sample_value("round_time_s_bucket", le="0.1") == 1
    assert hist.sample_value("round_time_s_bucket", le="1") == 3
    assert hist.sample_value("round_time_s_bucket", le="+Inf") == 4
    assert hist.sample_value("round_time_s_count") == 4
    assert hist.sample_value("round_time_s_sum") == pytest.approx(6.25)


def test_counter_family_strips_total_suffix():
    text = render_openmetrics(populated_registry())
    assert "# TYPE dispatches counter" in text
    assert "# TYPE dispatches_total" not in text
    assert 'dispatches_total{worker="3"} 12' in text


def test_registry_export_matches_render(tmp_path):
    metrics = populated_registry()
    assert metrics.to_openmetrics() == render_openmetrics(metrics)
    out = tmp_path / "metrics.om"
    metrics.export_openmetrics(out)
    assert out.read_text() == render_openmetrics(metrics)
    assert out.read_text().endswith("# EOF\n")


def test_unset_gauges_are_skipped():
    metrics = MetricsRegistry()
    metrics.gauge("never_set")
    metrics.counter("something_total").inc()
    families = parse_openmetrics(render_openmetrics(metrics))
    assert "never_set" not in families


def test_label_values_escape_and_unescape():
    metrics = MetricsRegistry()
    nasty = 'a"b\\c\nd'
    metrics.counter("events_total", kind=nasty).inc(2)
    families = parse_openmetrics(render_openmetrics(metrics))
    assert families["events"].sample_value("events_total", kind=nasty) == 2


def test_name_sanitisation():
    assert sanitize_metric_name("round.time-s") == "round_time_s"
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_label_name("plan-sig") == "plan_sig"
    metrics = MetricsRegistry()
    metrics.counter("bad.name_total", **{"le-gal": "x"}).inc()
    families = parse_openmetrics(render_openmetrics(metrics))
    assert families["bad_name"].sample_value("bad_name_total", le_gal="x") == 1


def test_special_float_values_roundtrip():
    metrics = MetricsRegistry()
    metrics.gauge("inf_gauge").set(math.inf)
    families = parse_openmetrics(render_openmetrics(metrics))
    assert families["inf_gauge"].sample_value("inf_gauge") == math.inf


def test_parser_rejects_untyped_samples():
    with pytest.raises(OpenMetricsParseError, match="precedes its TYPE"):
        parse_openmetrics("orphan_total 1\n# EOF\n")


def test_parser_rejects_missing_eof():
    with pytest.raises(OpenMetricsParseError, match="EOF"):
        parse_openmetrics("# TYPE x counter\nx_total 1\n")


def test_parser_rejects_noncumulative_buckets():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        'h_bucket{le="+Inf"} 3\n'
        "h_sum 1\nh_count 3\n# EOF\n"
    )
    with pytest.raises(OpenMetricsParseError, match="not cumulative"):
        parse_openmetrics(text)


def test_parser_rejects_missing_inf_bucket():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 2\n'
        "h_sum 1\nh_count 2\n# EOF\n"
    )
    with pytest.raises(OpenMetricsParseError, match=r"\+Inf"):
        parse_openmetrics(text)


def test_disabled_registry_renders_empty_exposition():
    text = render_openmetrics(MetricsRegistry(enabled=False))
    assert parse_openmetrics(text) == {}
    assert text == "# EOF\n"
