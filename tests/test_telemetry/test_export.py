"""Run manifests and the HTTP metrics scrape endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry import (
    MetricsHTTPServer,
    MetricsRegistry,
    git_revision,
    parse_openmetrics,
    write_run_manifest,
)
from repro.telemetry.export import OPENMETRICS_CONTENT_TYPE


def test_manifest_records_provenance(tmp_path):
    path = tmp_path / "manifest.json"
    returned = write_run_manifest(
        path,
        config={"task": "cnn", "rounds": 3, "seed": 17},
        artifacts={"trace": "trace.jsonl", "metrics": None,
                   "history": "hist.json"},
        extra={"result": {"final_metric": 0.91}},
    )
    on_disk = json.loads(path.read_text())
    assert on_disk == returned
    assert on_disk["kind"] == "repro-run-manifest"
    assert on_disk["schema_version"] == 1
    assert on_disk["package_version"]
    assert on_disk["python"].count(".") == 2
    assert isinstance(on_disk["argv"], list)
    assert on_disk["config"] == {"task": "cnn", "rounds": 3, "seed": 17}
    # None-valued artifacts are dropped, the rest kept verbatim
    assert on_disk["artifacts"] == {"trace": "trace.jsonl",
                                    "history": "hist.json"}
    assert on_disk["result"] == {"final_metric": 0.91}


def test_manifest_git_sha_in_repo_checkout():
    # tests run from the repo checkout, so a SHA must be resolvable
    revision = git_revision()
    assert revision is not None
    assert len(revision.replace("-dirty", "")) == 40


def test_git_revision_outside_checkout(tmp_path):
    assert git_revision(cwd=tmp_path) is None


def test_scrape_endpoint_serves_openmetrics():
    metrics = MetricsRegistry()
    metrics.counter("scrapes_total", source="test").inc(3)
    with MetricsHTTPServer(metrics) as server:
        assert server.port > 0
        with urllib.request.urlopen(server.url, timeout=5) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == \
                OPENMETRICS_CONTENT_TYPE
            text = response.read().decode("utf-8")
        families = parse_openmetrics(text)
        assert families["scrapes"].sample_value(
            "scrapes_total", source="test") == 3

        # the endpoint is live: scrape again after more increments
        metrics.counter("scrapes_total", source="test").inc(2)
        with urllib.request.urlopen(server.url, timeout=5) as response:
            families = parse_openmetrics(response.read().decode("utf-8"))
        assert families["scrapes"].sample_value(
            "scrapes_total", source="test") == 5

        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/other", timeout=5)


def test_scrape_endpoint_closes_cleanly():
    server = MetricsHTTPServer(MetricsRegistry())
    url = server.url
    server.close()
    with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
        urllib.request.urlopen(url, timeout=1)
