"""Acceptance: a CLI run with tracing emits schema-valid JSONL.

This is the contract the DESIGN.md "Observability" section documents;
CI's telemetry-smoke job produces the same artifacts.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry.spans import RECORD_KINDS, SPAN_NAMES

REQUIRED_SPAN_KEYS = {"kind", "name", "span_id", "parent_id", "start_s",
                      "duration_s", "attrs"}
REQUIRED_EVENT_KEYS = {"kind", "name", "parent_id", "time_s", "attrs"}


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("telemetry")
    trace = out / "trace.jsonl"
    metrics = out / "metrics.json"
    code = main([
        "run", "--task", "cnn", "--strategy", "fedmp",
        "--rounds", "3", "--workers", "4", "--seed", "5",
        "--trace-out", str(trace), "--metrics-out", str(metrics),
    ])
    assert code == 0
    records = [json.loads(line)
               for line in trace.read_text().splitlines()]
    return records, json.loads(metrics.read_text())


def test_every_record_matches_schema(artifacts):
    records, _ = artifacts
    assert records, "trace is empty"
    for record in records:
        assert record["kind"] in RECORD_KINDS
        if record["kind"] == "span":
            assert REQUIRED_SPAN_KEYS <= set(record)
            assert record["name"] in SPAN_NAMES
            assert isinstance(record["span_id"], int)
            assert record["duration_s"] >= 0.0
            assert record["start_s"] >= 0.0
        else:
            assert REQUIRED_EVENT_KEYS <= set(record)
            assert record["time_s"] >= 0.0
        assert record["parent_id"] is None \
            or isinstance(record["parent_id"], int)
        assert isinstance(record["attrs"], dict)


def test_parent_ids_resolve(artifacts):
    records, _ = artifacts
    span_ids = {r["span_id"] for r in records if r["kind"] == "span"}
    for record in records:
        if record["parent_id"] is not None:
            assert record["parent_id"] in span_ids


def test_trace_covers_every_round_event(artifacts):
    records, _ = artifacts
    spans = [r for r in records if r["kind"] == "span"]
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    rounds, workers = 3, 4
    assert len(by_name["round"]) == rounds
    assert len(by_name["dispatch"]) == rounds * workers
    # training spans: one per member on the fallback path, one per
    # cohort (carrying a ``members`` attr) on the vectorised path
    trained = sum(
        span["attrs"].get("members", 1)
        for span in by_name.get("local_train", [])
        + by_name.get("cohort_train", [])
    )
    assert trained == rounds * workers
    assert len(by_name["aggregate"]) == rounds
    # worker ids and pruning ratios on every dispatch
    for span in by_name["dispatch"]:
        assert span["attrs"]["worker"] in range(workers)
        assert 0.0 <= span["attrs"]["ratio"] < 1.0
    # one E-UCB snapshot per round, with per-worker agent state
    snapshots = [r for r in records
                 if r["kind"] == "event" and r["name"] == "eucb_snapshot"]
    assert len(snapshots) == rounds
    for event in snapshots:
        agents = event["attrs"]["snapshot"]["agents"]
        assert set(agents) == {str(w) for w in range(workers)}


def test_metrics_json_shape(artifacts):
    _, metrics = artifacts
    assert set(metrics) == {"counters", "gauges", "histograms"}
    names = {c["name"] for c in metrics["counters"]}
    assert {"dispatches_total", "contributions_total",
            "download_params_total", "upload_params_total"} <= names
    for hist in metrics["histograms"]:
        assert len(hist["bucket_counts"]) == len(hist["buckets"]) + 1
        summary = hist["summary"]
        assert summary["count"] == sum(hist["bucket_counts"])
        if summary["count"]:
            assert summary["p50"] <= summary["p95"] <= summary["p99"]
