"""Metrics registry: instruments, label keying, percentile summaries."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    format_instrument,
)


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("dispatches_total", worker=0)
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_label_sets_key_distinct_instruments():
    registry = MetricsRegistry()
    a = registry.counter("x", worker=0)
    b = registry.counter("x", worker=1)
    again = registry.counter("x", worker=0)
    assert a is again
    assert a is not b
    # label order must not matter
    assert registry.gauge("g", a=1, b=2) is registry.gauge("g", b=2, a=1)


def test_gauge_keeps_last_value():
    registry = MetricsRegistry()
    gauge = registry.gauge("pruning_ratio", worker=2)
    gauge.set(0.3)
    gauge.set(0.6)
    assert gauge.value == 0.6


def test_histogram_percentiles_interpolate():
    hist = Histogram("t", {}, buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.5, 3.0):
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 4
    assert summary["min"] == 0.5
    assert summary["max"] == 3.0
    assert summary["sum"] == pytest.approx(6.5)
    # percentiles are monotone and inside the observed range
    p50, p95, p99 = summary["p50"], summary["p95"], summary["p99"]
    assert 0.5 <= p50 <= p95 <= p99 <= 3.0


def test_histogram_overflow_reports_observed_max():
    hist = Histogram("t", {}, buckets=(1.0,))
    hist.observe(10.0)
    hist.observe(100.0)
    assert hist.percentile(99.0) == 100.0


def test_empty_histogram_summary():
    hist = Histogram("t", {})
    assert hist.percentile(50.0) is None
    assert hist.summary()["count"] == 0
    assert hist.summary()["p95"] is None


def test_disabled_registry_hands_out_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("x", worker=0)
    counter.inc()
    registry.gauge("g").set(1.0)
    registry.histogram("h").observe(2.0)
    # shared null instruments, nothing registered
    assert registry.counter("y") is registry.counter("z")
    assert registry.counters == []
    assert registry.to_dict() == {"counters": [], "gauges": [],
                                  "histograms": []}


def test_format_instrument():
    assert format_instrument("x", {}) == "x"
    assert format_instrument("x", {"worker": 3, "layer": "fc1"}) \
        == "x{layer=fc1,worker=3}"


def test_registry_save_roundtrips(tmp_path):
    registry = MetricsRegistry()
    registry.counter("dispatches_total", worker=0).inc(4)
    registry.histogram("round_time_s").observe(1.25)
    path = tmp_path / "metrics.json"
    registry.save(path)
    payload = json.loads(path.read_text())
    assert payload["counters"][0]["name"] == "dispatches_total"
    assert payload["counters"][0]["value"] == 4
    hist = payload["histograms"][0]
    assert hist["summary"]["count"] == 1
    assert len(hist["bucket_counts"]) == len(hist["buckets"]) + 1
