"""TelemetryHook end-to-end against the round engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.runner import run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry import (
    ListSink,
    MetricsRegistry,
    Telemetry,
    TelemetryHook,
    Tracer,
)


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=20, test_per_class=5,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices("medium", np.random.default_rng(7))


def _config(**kwargs):
    base = dict(strategy="fedmp", max_rounds=2, local_iterations=1,
                batch_size=8, seed=3,
                strategy_kwargs={"warmup_rounds": 1})
    base.update(kwargs)
    return FLConfig(**base)


def _run(task, devices, config):
    sink = ListSink()
    telemetry = Telemetry(tracer=Tracer(sink), metrics=MetricsRegistry())
    history = run_federated_training(task, devices, config,
                                     hooks=[TelemetryHook(telemetry)],
                                     telemetry=telemetry)
    return history, sink, telemetry


def test_spans_cover_every_engine_event(task, devices):
    history, sink, _ = _run(task, devices, _config())
    n = len(devices)
    rounds = len(history.rounds)
    assert len(sink.spans("round")) == rounds
    assert len(sink.spans("decide")) == rounds
    assert len(sink.spans("dispatch")) == n * rounds
    # cohort-sharded dispatch prunes once per (ratio, cluster) cohort,
    # not once per member
    cohorts = len(sink.spans("dispatch_cohort"))
    assert rounds <= cohorts <= n * rounds
    assert len(sink.spans("prune")) == cohorts
    # training spans: one per member on the fallback path, one per
    # cohort on the vectorised path -- together they cover everyone
    trained = sum(
        span["attrs"].get("members", 1)
        for span in sink.spans("local_train") + sink.spans("cohort_train")
    )
    assert trained == n * rounds
    assert len(sink.spans("aggregate")) == rounds
    # every dispatch/train span names its worker and round
    for span in sink.spans("dispatch") + sink.spans("local_train"):
        assert span["attrs"]["worker"] in {d.device_id for d in devices}
        assert 0 <= span["attrs"]["round"] < rounds
    # dispatch spans carry the pruning ratio and priced volumes
    for span in sink.spans("dispatch"):
        assert 0.0 <= span["attrs"]["ratio"] < 1.0
        assert span["attrs"]["download_params"] > 0
        assert span["attrs"]["completion_time_s"] > 0


def test_spans_nest_under_their_round(task, devices):
    _, sink, _ = _run(task, devices, _config(max_rounds=1))
    round_ids = {s["span_id"] for s in sink.spans("round")}
    for name in ("decide", "dispatch_cohort", "local_train",
                 "cohort_train", "aggregate"):
        for span in sink.spans(name):
            assert span["parent_id"] in round_ids, name
    # per-member dispatch and the per-cohort prune nest under their
    # cohort span, not directly under the round
    cohort_ids = {s["span_id"] for s in sink.spans("dispatch_cohort")}
    for name in ("dispatch", "prune"):
        for span in sink.spans(name):
            assert span["parent_id"] in cohort_ids, name


def test_metrics_reconcile_with_history(task, devices):
    history, _, telemetry = _run(task, devices, _config())
    counters = {
        (c.name, c.labels.get("worker")): c.value
        for c in telemetry.metrics.counters
    }
    rounds = len(history.rounds)
    for device in devices:
        assert counters[("dispatches_total", device.device_id)] == rounds
        assert counters[("contributions_total", device.device_id)] == rounds
    hists = {h.name: h for h in telemetry.metrics.histograms}
    assert hists["round_time_s"].count == rounds
    assert hists["round_time_s"].sum == pytest.approx(
        sum(r.round_time_s for r in history.rounds)
    )


def test_eucb_snapshot_published_per_round(task, devices):
    history, sink, _ = _run(task, devices, _config())
    events = sink.events("eucb_snapshot")
    assert len(events) == len(history.rounds)
    for record in history.rounds:
        snapshot = record.extras["eucb"]
        assert set(snapshot["agents"]) == {
            str(d.device_id) for d in devices
        }
        for agent in snapshot["agents"].values():
            partition = agent["partition"]
            assert partition["edges"][0] == partition["low"]
            assert partition["edges"][-1] == partition["high"]
            assert len(agent["arms"]) == agent["num_regions"]
            for arm in agent["arms"]:
                assert arm["pulls"] >= 0
    # pull counts grow round over round
    first = history.rounds[0].extras["eucb"]["agents"]
    last = history.rounds[-1].extras["eucb"]["agents"]
    for wid in first:
        assert last[wid]["rounds_played"] >= first[wid]["rounds_played"]


def test_round_record_events_mirror_history(task, devices):
    history, sink, _ = _run(task, devices, _config())
    events = sink.events("round_record")
    assert len(events) == len(history.rounds)
    for event, record in zip(events, history.rounds):
        assert event["attrs"]["round"] == record.round_index
        assert event["attrs"]["sim_time_s"] == pytest.approx(
            record.sim_time_s
        )
        assert set(event["attrs"]["ratios"]) == {
            str(wid) for wid in record.ratios
        }


def test_no_snapshot_for_strategies_without_one(task, devices):
    history, sink, _ = _run(task, devices, _config(
        strategy="synfl", strategy_kwargs={},
    ))
    assert sink.events("eucb_snapshot") == []
    assert all("eucb" not in r.extras for r in history.rounds)


def test_telemetry_does_not_change_training(task, devices):
    bare = run_federated_training(task, devices, _config())
    observed, _, _ = _run(task, devices, _config())
    for a, b in zip(bare.rounds, observed.rounds):
        assert a.train_loss == b.train_loss
        assert a.sim_time_s == b.sim_time_s
        assert a.metric == b.metric
        assert a.ratios == b.ratios
