"""Crash-safe tracing: a killed run still leaves a parseable trace.

The JSONL sink is line-buffered and the tracer registers an atexit
drain, so a run interrupted mid-round (Ctrl-C, uncaught exception)
must leave a trace in which every record parses and the spans that
were open at the moment of death are emitted with ``aborted: true``.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.telemetry import JsonlSink, Tracer, build_tree, load_trace

# runs a tiny FL experiment with tracing on and raises KeyboardInterrupt
# from a hook once round 1 is underway -- mid-round, spans open
_CRASH_SCRIPT = """
import numpy as np
from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.hooks import RoundHook
from repro.fl.runner import run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry import JsonlSink, MetricsRegistry, Telemetry, Tracer

class Interrupt(RoundHook):
    def on_dispatch(self, round_index, dispatch):
        if round_index == 1:
            raise KeyboardInterrupt

dataset = make_synthetic_mnist(train_per_class=4, test_per_class=2,
                               rng=np.random.default_rng(0))
task = ClassificationTask(dataset, "cnn")
devices = make_scenario_devices({"A": 2, "B": 2},
                                np.random.default_rng(5))
config = FLConfig(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                  max_rounds=4, local_iterations=1, batch_size=4,
                  eval_every=10_000, seed=7)
telemetry = Telemetry(tracer=Tracer(JsonlSink(TRACE_PATH)),
                      metrics=MetricsRegistry())
run_federated_training(task, devices, config, hooks=[Interrupt()],
                       telemetry=telemetry)
"""


def test_interrupted_run_leaves_parseable_trace(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    script = f"TRACE_PATH = {str(trace_path)!r}\n" + _CRASH_SCRIPT
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=120,
    )
    # the interrupt must escape (no swallowing), yet the trace survives
    assert result.returncode != 0
    assert "KeyboardInterrupt" in result.stderr

    records = load_trace(trace_path)
    assert records, "crash left an empty trace"
    spans = [r for r in records if r.get("kind") == "span"]

    # round 0 completed normally before the crash
    finished = [s for s in spans if s["name"] == "round"
                and not s["attrs"].get("aborted")]
    assert any(s["attrs"].get("round") == 0 for s in finished)

    # the spans open at the moment of death were drained with the
    # aborted marker (at least the in-flight round 1)
    aborted = [s for s in spans if s["attrs"].get("aborted")]
    assert any(s["name"] == "round" and s["attrs"].get("round") == 1
               for s in aborted)

    # and the file reconstructs into a usable forest
    assert build_tree(records)


def test_tracer_close_drains_open_spans(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlSink(path))
    outer = tracer.span("round", round=0).__enter__()
    tracer.span("cohort_train").__enter__()
    tracer.close()
    spans = [r for r in load_trace(path) if r["kind"] == "span"]
    assert [s["name"] for s in spans] == ["cohort_train", "round"]
    assert all(s["attrs"]["aborted"] for s in spans)
    # idempotent: double close and post-close use must not raise
    tracer.close()
    outer.set("late", 1)


def test_tracer_context_manager_closes_sink(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(JsonlSink(path)) as tracer:
        with tracer.span("round", round=0):
            pass
    records = load_trace(path)
    assert [r["name"] for r in records] == ["round"]
    assert "aborted" not in records[0]["attrs"]
