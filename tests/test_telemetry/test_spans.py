"""Span tracer: nesting, emit-on-close, no-op behaviour, coercion."""

from __future__ import annotations

import json

import numpy as np

from repro.telemetry.spans import (
    NOOP_SPAN,
    JsonlSink,
    ListSink,
    Tracer,
    to_jsonable,
)


def test_nested_spans_reconstruct_tree():
    sink = ListSink()
    tracer = Tracer(sink)
    with tracer.span("round", round=0) as outer:
        with tracer.span("dispatch", worker=3):
            pass
        outer.set("round_time_s", 1.5)
    spans = sink.spans()
    # children emit before parents (emit-on-close)
    assert [s["name"] for s in spans] == ["dispatch", "round"]
    dispatch, round_span = spans
    assert dispatch["parent_id"] == round_span["span_id"]
    assert round_span["parent_id"] is None
    assert round_span["attrs"] == {"round": 0, "round_time_s": 1.5}
    assert dispatch["attrs"] == {"worker": 3}


def test_span_timing_is_monotone():
    sink = ListSink()
    tracer = Tracer(sink)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    inner, outer = sink.spans()
    assert inner["start_s"] >= outer["start_s"]
    assert inner["duration_s"] <= outer["duration_s"]
    assert all(s["duration_s"] >= 0.0 for s in (inner, outer))


def test_events_attach_to_current_span():
    sink = ListSink()
    tracer = Tracer(sink)
    tracer.event("orphan", x=1)
    with tracer.span("round") as span:
        tracer.event("inside", y=2)
        span.set("done", True)
    orphan, inside = sink.events()
    assert orphan["parent_id"] is None
    assert inside["parent_id"] == sink.spans("round")[0]["span_id"]
    assert inside["attrs"] == {"y": 2}


def test_disabled_tracer_is_shared_noop():
    tracer = Tracer()  # no sink
    assert not tracer.enabled
    span = tracer.span("round", round=0)
    assert span is NOOP_SPAN
    assert tracer.span("dispatch") is NOOP_SPAN  # one shared object
    with span as active:
        active.set("ignored", 1)  # must not raise
    tracer.event("ignored")  # must not raise
    tracer.close()


def test_jsonl_sink_roundtrips(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlSink(path))
    with tracer.span("round", round=0):
        tracer.event("marker", note="hi")
    tracer.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["kind"] for r in records] == ["event", "span"]
    assert records[1]["name"] == "round"


def test_mis_nested_exit_unwinds():
    sink = ListSink()
    tracer = Tracer(sink)
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    outer.__exit__(None, None, None)  # closes inner implicitly
    assert len(sink.spans()) == 1  # only outer emitted
    inner.__exit__(None, None, None)  # tolerated, emits inner
    assert [s["name"] for s in sink.spans()] == ["outer", "inner"]


def test_to_jsonable_coerces_numpy_and_keys():
    value = {
        3: np.float32(1.5),
        "arr": np.arange(3),
        "nested": [np.int64(2), {"deep": np.bool_(True)}],
        "plain": "text",
    }
    out = to_jsonable(value)
    assert out == {
        "3": 1.5,
        "arr": [0, 1, 2],
        "nested": [2, {"deep": True}],
        "plain": "text",
    }
    json.dumps(out)  # fully serialisable
