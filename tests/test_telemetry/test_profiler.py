"""Per-layer profiler: wrapping, restoration, FLOP pairing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Flatten, Linear, ReLU, Sequential
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import LayerProfiler


def _model(rng):
    return Sequential(
        Flatten(),
        Linear(12, 8, rng=rng),
        ReLU(),
        Linear(8, 4, rng=rng),
    )


@pytest.fixture
def model(rng):
    return _model(rng)


def test_profiler_records_forward_and_backward(model, rng):
    profiler = LayerProfiler()
    x = rng.normal(size=(5, 3, 2, 2))
    with profiler.attach(model):
        out = model(x)
        model.backward(np.ones_like(out))
    records = {r["name"]: r for r in profiler.summary()}
    assert len(records) == 4
    for record in records.values():
        assert record["forward_calls"] == 1
        assert record["backward_calls"] == 1
        assert record["forward_s"] >= 0.0
        assert record["samples"] == 5
    # linear layers have analytic FLOPs; per-sample * samples = total
    linear = next(r for r in records.values()
                  if r["layer_type"] == "Linear")
    assert linear["flops_per_sample"] is not None
    assert linear["total_flops"] == linear["flops_per_sample"] * 5
    assert profiler.total_s >= 0.0


def test_profiler_detaches_cleanly(model, rng):
    profiler = LayerProfiler()
    x = rng.normal(size=(2, 3, 2, 2))
    baseline = model(x)
    with profiler.attach(model):
        model(x)
    # instance shadows removed: forward resolves to the class method again
    for _, module in model.leaf_modules():
        assert "forward" not in vars(module)
        assert "backward" not in vars(module)
    np.testing.assert_array_equal(model(x), baseline)


def test_profiler_output_is_unchanged(model, rng):
    profiler = LayerProfiler()
    x = rng.normal(size=(4, 3, 2, 2))
    bare = model(x)
    with profiler.attach(model):
        profiled = model(x)
    np.testing.assert_array_equal(bare, profiled)


def test_profiler_accumulates_across_attachments(model, rng):
    profiler = LayerProfiler()
    x = rng.normal(size=(3, 3, 2, 2))
    for _ in range(2):
        with profiler.attach(model):
            model(x)
    record = profiler.summary()[0]
    total_calls = sum(r["forward_calls"] for r in profiler.summary())
    assert total_calls == 8  # 4 layers x 2 attachments
    assert profiler.attach_count == 2
    assert record["samples"] in (6, 6)  # 3 samples x 2 runs per layer


def test_worker_matching():
    assert LayerProfiler().matches(3)
    assert LayerProfiler(worker_id=3).matches(3)
    assert not LayerProfiler(worker_id=3).matches(4)


def test_publish_folds_into_metrics(model, rng):
    profiler = LayerProfiler()
    x = rng.normal(size=(2, 3, 2, 2))
    with profiler.attach(model):
        out = model(x)
        model.backward(np.ones_like(out))
    registry = MetricsRegistry()
    profiler.publish(registry)
    names = {c.name for c in registry.counters}
    assert "layer_forward_s" in names
    assert "layer_backward_s" in names
    assert "layer_flops_total" in names
