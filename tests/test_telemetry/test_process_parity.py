"""Telemetry parity between the serial and process executors.

Fanning local training out to a worker-process pool must not lose
observability: the engine-side spans and counters still fire, the
pool adds its own ``parallel_train`` / ``serialize`` / ``transfer``
spans, and the transport's ``wire_bytes_total`` accounting reconciles
with the parameter counts :class:`CommVolumeHook` reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.hooks import CommVolumeHook
from repro.fl.runner import run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry import (
    ListSink,
    MetricsRegistry,
    Telemetry,
    TelemetryHook,
    Tracer,
)

ROUNDS = 2

#: float32 parameters on the wire
_BYTES_PER_PARAM = 4
#: generous per-frame allowance for headers, plan tables and names
_FRAME_OVERHEAD = 64 * 1024


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=8, test_per_class=2,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices({"A": 2, "B": 2},
                                 np.random.default_rng(5))


def _run(task, devices, executor, wire_profile="exact"):
    # cohort_rounds="off" keeps both executors on the per-member path
    # (the process pool is per-member), so span sets are comparable
    config = FLConfig(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                      max_rounds=ROUNDS, local_iterations=1,
                      batch_size=4, eval_every=10_000, seed=7,
                      cohort_rounds="off", executor=executor,
                      num_procs=2 if executor == "process" else None,
                      wire_profile=wire_profile)
    sink = ListSink()
    telemetry = Telemetry(tracer=Tracer(sink), metrics=MetricsRegistry())
    comm = CommVolumeHook()
    history = run_federated_training(
        task, devices, config,
        hooks=[TelemetryHook(telemetry), comm], telemetry=telemetry)
    return history, sink, telemetry.metrics, comm


@pytest.fixture(scope="module")
def serial_run(task, devices):
    return _run(task, devices, "serial")


@pytest.fixture(scope="module")
def process_run(task, devices):
    return _run(task, devices, "process")


@pytest.fixture(scope="module")
def sparse_run(task, devices):
    return _run(task, devices, "process",
                wire_profile="sparse+quantized")


def _counter_total(metrics, name):
    return sum(c.value for c in metrics.counters if c.name == name)


def test_engine_spans_survive_process_fanout(serial_run, process_run):
    _, serial_sink, _, _ = serial_run
    _, process_sink, _, _ = process_run
    serial_names = {s["name"] for s in serial_sink.spans()}
    process_names = {s["name"] for s in process_sink.spans()}
    # everything the serial engine traces is still traced...
    assert serial_names <= process_names
    # ...plus the pool's own phases
    assert {"parallel_train", "serialize", "transfer"} <= process_names
    # per-worker training spans are not lost across the pool boundary
    assert len(process_sink.spans("local_train")) == \
        len(serial_sink.spans("local_train"))
    for span in process_sink.spans("local_train"):
        assert span["attrs"]["train_loss"] == pytest.approx(
            span["attrs"]["train_loss"])
        assert span["attrs"]["worker_wall_s"] >= 0.0
    assert len(process_sink.spans("round")) == ROUNDS


def test_counters_match_across_executors(serial_run, process_run):
    _, _, serial_metrics, _ = serial_run
    _, _, process_metrics, _ = process_run
    for name in ("dispatches_total", "contributions_total",
                 "download_params_total", "upload_params_total",
                 "aggregations_total"):
        assert _counter_total(process_metrics, name) == \
            _counter_total(serial_metrics, name), name


def test_histories_identical(serial_run, process_run):
    serial_history, _, _, _ = serial_run
    process_history, _, _, _ = process_run
    for a, b in zip(serial_history.rounds, process_history.rounds):
        assert a.train_loss == b.train_loss
        assert a.sim_time_s == b.sim_time_s
        assert a.metric == b.metric


def test_wire_bytes_reconcile_with_comm_volume(process_run):
    """`wire_bytes_total` (transport frames) brackets the parameter
    volume `CommVolumeHook` counts: every dispatched/uploaded float32
    parameter crossed the wire once, plus bounded framing overhead."""
    _, _, metrics, comm = process_run
    by_kind = {c.labels["kind"]: c.value for c in metrics.counters
               if c.name == "wire_bytes_total"}
    assert set(by_kind) >= {"dispatch", "contribution"}

    dispatches = _counter_total(metrics, "dispatches_total")
    contributions = _counter_total(metrics, "contributions_total")

    dispatch_payload = comm.total_download_params * _BYTES_PER_PARAM
    assert by_kind["dispatch"] >= dispatch_payload
    assert by_kind["dispatch"] <= dispatch_payload \
        + dispatches * _FRAME_OVERHEAD

    upload_payload = comm.total_upload_params * _BYTES_PER_PARAM
    assert by_kind["contribution"] >= upload_payload
    assert by_kind["contribution"] <= upload_payload \
        + contributions * _FRAME_OVERHEAD

    # template blobs are charged separately and only on cache misses
    if "template" in by_kind:
        assert by_kind["template"] > 0


def test_sparse_profile_wire_bytes_stay_honest(process_run, sparse_run):
    """Under the sparse+quantized profile the contribution leg must
    genuinely shrink (the accounting is not allowed to keep reporting
    dense volumes), dispatches stay dense and bracketed, and the
    contribution side prices below the 4 bytes/param dense floor."""
    _, _, exact_metrics, _ = process_run
    _, _, metrics, comm = sparse_run
    by_kind = {c.labels["kind"]: c.value for c in metrics.counters
               if c.name == "wire_bytes_total"}
    exact_by_kind = {c.labels["kind"]: c.value
                     for c in exact_metrics.counters
                     if c.name == "wire_bytes_total"}

    # dispatch leg is dense in every profile: same bracketing as exact
    dispatch_payload = comm.total_download_params * _BYTES_PER_PARAM
    dispatches = _counter_total(metrics, "dispatches_total")
    assert by_kind["dispatch"] >= dispatch_payload
    assert by_kind["dispatch"] <= dispatch_payload \
        + dispatches * _FRAME_OVERHEAD

    # contribution leg: strictly below the dense pricing, and below
    # what the exact run actually shipped
    upload_payload = comm.total_upload_params * _BYTES_PER_PARAM
    assert 0 < by_kind["contribution"] < upload_payload
    assert by_kind["contribution"] < exact_by_kind["contribution"]
    bytes_per_param = by_kind["contribution"] / comm.total_upload_params
    assert bytes_per_param < 4.0

    # templates ride shared memory: charged once per plan signature
    # (one fixed-ratio signature here), never once per pool member
    assert 0 < by_kind["template"] < _FRAME_OVERHEAD \
        + comm.total_download_params // dispatches * _BYTES_PER_PARAM * 2
