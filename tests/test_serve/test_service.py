"""Parameter-server service mode, end to end over loopback sockets.

The service and its clients run as real TCP peers (threads here,
processes in :mod:`repro.verify.service`): registration, dispatch,
contribution push, graceful leaves, scripted churn, and the headline
parity guarantee -- a served run's history is byte-identical to a
serial in-process run over the same roster script, with final weights
at 0 ULP.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask
from repro.runtime.sockets import SocketTransport
from repro.runtime.transport import WorkerCrashError
from repro.serve import (
    ACTIVE,
    GONE,
    PROTOCOL_VERSION,
    FedMPService,
    ServiceClient,
    ServiceError,
)
from repro.simulation.cluster import make_scenario_devices
from repro.verify.differential import (
    StateCaptureHook,
    normalised_history_bytes,
    ulp_distance,
)


@pytest.fixture(scope="module")
def task():
    dataset = make_synthetic_mnist(train_per_class=16, test_per_class=4,
                                   rng=np.random.default_rng(0))
    return ClassificationTask(dataset, "cnn")


@pytest.fixture
def devices():
    return make_scenario_devices({"A": 2, "B": 2},
                                 np.random.default_rng(7))


def _config(**overrides) -> FLConfig:
    base = dict(strategy="fedmp", max_rounds=3, local_iterations=2,
                batch_size=8, lr=0.05, eval_every=3, seed=11)
    base.update(overrides)
    return FLConfig(**base)


def _run_fleet(service, clients, timeout_s=180.0):
    """Service + clients in threads; returns (history, results, errors)."""
    box, results, errors = {}, {}, {}

    def serve():
        try:
            box["history"] = service.run()
        except BaseException as exc:  # surfaced by the caller
            box["error"] = exc

    def run_client(key, client):
        try:
            results[key] = client.run()
        except BaseException as exc:
            errors[key] = exc

    threads = [threading.Thread(target=serve, daemon=True)]
    threads += [
        threading.Thread(target=run_client, args=(key, client),
                         daemon=True)
        for key, client in clients.items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout_s)
    alive = [t for t in threads if t.is_alive()]
    if alive:
        service.shutdown()
        raise AssertionError(f"{len(alive)} fleet thread(s) hung")
    if "error" in box:
        raise box["error"]
    return box.get("history"), results, errors


def _ulps(reference, candidate):
    assert reference.keys() == candidate.keys()
    return max(
        int(ulp_distance(reference[key], candidate[key]).max())
        for key in reference
    )


# ----------------------------------------------------------------------
# end-to-end runs
# ----------------------------------------------------------------------
def test_loopback_run_completes(task, devices):
    service = FedMPService(task, devices, _config(), min_workers=4)
    clients = {
        wid: ServiceClient(service.address, worker_id=wid)
        for wid in range(4)
    }
    history, results, errors = _run_fleet(service, clients)
    assert errors == {}
    assert len(history.rounds) == 3
    assert results == {wid: 3 for wid in range(4)}
    assert service.counters["register"] == 4
    assert service.counters["leave"] == 4
    assert service.counters["lost"] == 0
    assert all(entry.state == GONE for entry in service.roster.values())


def test_scripted_churn_matches_serial_reference(task, devices):
    script = {0: [0, 1, 2], 2: [0, 1, 3]}
    config = _config(max_rounds=4)

    # serial in-process reference over the same membership script
    capture = StateCaptureHook()
    engine = Engine(task, devices, config, hooks=[capture])
    engine.membership_provider = lambda round_index: list(
        script[max(key for key in script if key <= round_index)]
    )
    try:
        reference = make_scheduler(config).run(engine)
    finally:
        engine.close()

    served_capture = StateCaptureHook()
    service = FedMPService(task, devices, config,
                           hooks=[served_capture],
                           roster_script=script)
    clients = {
        # worker 2 is scripted out from round 2: it leaves after its
        # two dispatches; worker 3 registers at once and idles until
        # the script includes it
        wid: ServiceClient(service.address, worker_id=wid,
                           leave_after=2 if wid == 2 else None)
        for wid in (0, 1, 2, 3)
    }
    history, results, errors = _run_fleet(service, clients)
    assert errors == {}
    assert results == {0: 4, 1: 4, 2: 2, 3: 2}
    assert (normalised_history_bytes(history)
            == normalised_history_bytes(reference))
    assert _ulps(capture.states[-1], served_capture.states[-1]) == 0


def test_leaver_slot_can_be_reclaimed(task, devices):
    script = {0: [0, 1]}
    service = FedMPService(task, devices, _config(max_rounds=4),
                           roster_script=script)
    first = ServiceClient(service.address, worker_id=0, leave_after=2)
    steady = ServiceClient(service.address, worker_id=1)
    box = {}

    def serve():
        box["history"] = service.run()

    server = threading.Thread(target=serve, daemon=True)
    steady_thread = threading.Thread(target=steady.run, daemon=True)
    first_thread = threading.Thread(target=first.run, daemon=True)
    server.start()
    steady_thread.start()
    first_thread.start()
    first_thread.join(timeout=120)
    assert not first_thread.is_alive()
    # the scripted roster still wants worker 0: a replacement client
    # claims the vacated slot and the run finishes
    replacement = ServiceClient(service.address, worker_id=0)
    completed = replacement.run()
    server.join(timeout=120)
    steady_thread.join(timeout=120)
    assert not server.is_alive()
    assert len(box["history"].rounds) == 4
    assert completed == 2
    entry = service.roster[0]
    assert entry.registrations == 2
    assert service.counters["reconnect"] == 1


def test_registration_timeout_raises_service_error(task, devices):
    service = FedMPService(task, devices, _config(), min_workers=2,
                           registration_timeout_s=1.0)
    with pytest.raises(ServiceError, match="waiting for"):
        service.run()


def test_fleet_evaporating_fails_fast(task, devices):
    # both workers leave after two dispatches with three rounds still
    # owed; whichever way the leave races the round-start snapshot the
    # service must fail loudly (abandoned requests or a registration
    # timeout), never hang
    service = FedMPService(task, devices, _config(max_rounds=5),
                           min_workers=2,
                           registration_timeout_s=1.5)
    clients = {
        wid: ServiceClient(service.address, leave_after=2)
        for wid in (0, 1)
    }
    with pytest.raises((ServiceError, WorkerCrashError)):
        _run_fleet(service, clients)


# ----------------------------------------------------------------------
# protocol-level behaviour (service pumped from the test thread)
# ----------------------------------------------------------------------
def _pumped_request(service, transport, message, tries=200):
    transport.send(message)
    for _ in range(tries):
        service.pump(0.02)
        reply = transport.next_message(timeout_s=0.02)
        if reply is not None:
            return reply
    raise AssertionError("no reply from the pumped service")


def test_protocol_mismatch_is_rejected(task, devices):
    service = FedMPService(task, devices, _config())
    transport = SocketTransport(service.address).connect()
    try:
        reply = _pumped_request(
            service, transport,
            ("register", 1, {"protocol": 999, "worker_id": None}),
        )
        assert reply[0] == "err"
        assert "protocol" in reply[2]
    finally:
        transport.close()
        service.shutdown()
        service.engine.close()


def test_status_reports_roster_and_counters(task, devices):
    service = FedMPService(task, devices, _config())
    transport = SocketTransport(service.address).connect()
    try:
        reply = _pumped_request(
            service, transport,
            ("register", 1, {"protocol": PROTOCOL_VERSION,
                             "worker_id": 2}),
        )
        assert reply[0] == "registered"
        assert reply[2]["worker_id"] == 2
        status = _pumped_request(service, transport, ("status", 2))
        assert status[0] == "status_ok"
        report = status[2]
        assert report["protocol"] == PROTOCOL_VERSION
        assert report["counters"]["register"] == 1
        assert report["roster"][2]["state"] == ACTIVE
        assert report["rounds_recorded"] == 0
    finally:
        transport.close()
        service.shutdown()
        service.engine.close()


def test_duplicate_registration_for_active_slot_is_rejected(task,
                                                            devices):
    service = FedMPService(task, devices, _config())
    first = SocketTransport(service.address).connect()
    second = SocketTransport(service.address).connect()
    try:
        reply = _pumped_request(
            service, first,
            ("register", 1, {"protocol": PROTOCOL_VERSION,
                             "worker_id": 1}),
        )
        assert reply[0] == "registered"
        rejected = _pumped_request(
            service, second,
            ("register", 1, {"protocol": PROTOCOL_VERSION,
                             "worker_id": 1}),
        )
        assert rejected[0] == "err"
        assert "already registered" in rejected[2]
    finally:
        first.close()
        second.close()
        service.shutdown()
        service.engine.close()
