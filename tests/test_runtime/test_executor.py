"""Executor seam: serial-vs-process parity, telemetry, straggler wiring.

The headline guarantee (ISSUE 5 / DESIGN.md 3.5): process-pool
execution is bitwise identical -- 0 ULPs -- to inline serial execution
under the same seed, across schedulers and model families, with
byte-identical normalised history JSON.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_cifar10, make_synthetic_mnist
from repro.data.text import make_synthetic_ptb
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask, LanguageModelTask
from repro.runtime.codec import TrainHyper
from repro.runtime.executor import (
    ProcessExecutor,
    SerialExecutor,
    TrainRequest,
    make_executor,
)
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import LayerProfiler
from repro.telemetry.runtime import Telemetry
from repro.telemetry.spans import ListSink, Tracer
from repro.verify.differential import differential_serial_vs_process


@pytest.fixture(scope="module")
def mnist():
    return make_synthetic_mnist(train_per_class=12, test_per_class=4,
                                rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices({"A": 2, "B": 2}, np.random.default_rng(7))


def _config(**overrides) -> FLConfig:
    base = dict(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                max_rounds=3, local_iterations=2, batch_size=8, lr=0.05,
                eval_every=3, seed=11)
    base.update(overrides)
    return FLConfig(**base)


def _counter_sum(metrics: MetricsRegistry, name: str, **labels) -> float:
    return sum(
        counter.value for counter in metrics.counters
        if counter.name == name and all(
            str(counter.labels.get(key)) == str(value)
            for key, value in labels.items()
        )
    )


# ----------------------------------------------------------------------
# bitwise parity, per scheduler and model family
# ----------------------------------------------------------------------
def test_parity_sync_fedmp(mnist, devices):
    factory = lambda: ClassificationTask(mnist, "cnn")  # noqa: E731
    config = _config(strategy="fedmp", sync_scheme="r2sp",
                     strategy_kwargs={"warmup_rounds": 1})
    report, histories_match = differential_serial_vs_process(
        factory, devices, config, tolerance_ulps=0, num_procs=2,
    )
    assert report.passed, report.describe()
    assert report.max_ulps == 0
    assert histories_match


def test_parity_async_scheduler(mnist, devices):
    factory = lambda: ClassificationTask(mnist, "cnn")  # noqa: E731
    config = _config(scheduler="async", async_m=2)
    report, histories_match = differential_serial_vs_process(
        factory, devices, config, tolerance_ulps=0, num_procs=2,
    )
    assert report.passed, report.describe()
    assert histories_match


def test_parity_semi_sync_scheduler(mnist, devices):
    factory = lambda: ClassificationTask(mnist, "cnn")  # noqa: E731
    config = _config(scheduler="semi_sync", semi_sync_deadline_s=1e12,
                     max_rounds=2)
    report, histories_match = differential_serial_vs_process(
        factory, devices, config, tolerance_ulps=0, num_procs=2,
    )
    assert report.passed, report.describe()
    assert histories_match


def test_parity_dropout_model_ships_pickled_submodels(devices):
    """alexnet carries RNG-bearing Dropout modules, so the engine must
    pickle the extracted sub-model per dispatch instead of cloning a
    child-side template -- and parity must still hold."""
    cifar = make_synthetic_cifar10(train_per_class=6, test_per_class=2,
                                   rng=np.random.default_rng(1))

    def factory():
        return ClassificationTask(
            cifar, "alexnet",
            model_kwargs={"width_mult": 0.125, "dropout": 0.1},
        )

    config = _config(max_rounds=2, local_iterations=1, batch_size=4)
    probe = Engine(factory(), devices, config)
    try:
        assert probe._has_rng_modules
    finally:
        probe.close()
    report, histories_match = differential_serial_vs_process(
        factory, devices, config, tolerance_ulps=0, num_procs=2,
    )
    assert report.passed, report.describe()
    assert histories_match


def test_parity_lstm_sequence_iterators(devices):
    """The pool child must rebuild the sequence-iterator family for the
    language-model task, not just the batch iterator."""
    corpus = make_synthetic_ptb(vocab_size=50, train_tokens=2_000,
                                valid_tokens=200, test_tokens=200,
                                rng=np.random.default_rng(2))

    def factory():
        return LanguageModelTask(
            corpus, seq_len=8, lm_batch_size=4,
            model_kwargs={"embedding_dim": 8, "hidden_size": 12},
        )

    config = _config(max_rounds=2, local_iterations=1, batch_size=4)
    report, histories_match = differential_serial_vs_process(
        factory, devices, config, tolerance_ulps=0, num_procs=2,
    )
    assert report.passed, report.describe()
    assert histories_match


# ----------------------------------------------------------------------
# telemetry + template caching
# ----------------------------------------------------------------------
def test_process_run_emits_spans_counters_and_caches_templates(
        mnist, devices):
    sink = ListSink()
    telemetry = Telemetry(tracer=Tracer(sink=sink),
                          metrics=MetricsRegistry())
    task = ClassificationTask(mnist, "cnn")
    config = _config(executor="process", num_procs=2)
    engine = Engine(task, devices, config, telemetry=telemetry)
    try:
        assert isinstance(engine.executor, ProcessExecutor)
        assert engine.executor.run([]) == []
        make_scheduler(config).run(engine)

        metrics = telemetry.metrics
        assert _counter_sum(metrics, "wire_bytes_total",
                            kind="dispatch") > 0
        assert _counter_sum(metrics, "wire_bytes_total",
                            kind="contribution") > 0
        assert _counter_sum(metrics, "wire_bytes_total",
                            kind="template") > 0
        # fixed ratio => one plan signature; each member unpickles one
        # template and clones it for every later dispatch
        for cached in engine.executor._cached_templates.values():
            assert len(cached) == 1
        # quorum 0.85 over 4 workers anchors the deadline at the last
        # arrival, so the heartbeat cannot misfire here
        assert engine.executor.last_stragglers == []

        assert sink.spans("parallel_train")
        assert sink.spans("serialize")
        transfers = sink.spans("transfer")
        assert transfers
        assert all(span["attrs"]["reply_bytes"] > 0 for span in transfers)
        trains = sink.spans("local_train")
        assert len(trains) == config.max_rounds * len(devices)
        assert all("train_loss" in span["attrs"] for span in trains)
        assert all("worker_wall_s" in span["attrs"] for span in trains)
    finally:
        engine.close()
    assert all(not member.proc.is_alive()
               for member in engine.executor.pool.members)


def test_straggler_heartbeat_flags_slow_member(mnist, devices):
    """An emulated-latency outlier must be flagged, counted and
    surfaced as an event -- without affecting results."""
    sink = ListSink()
    telemetry = Telemetry(tracer=Tracer(sink=sink),
                          metrics=MetricsRegistry())
    task = ClassificationTask(mnist, "cnn")
    config = _config(max_rounds=1)
    engine = Engine(task, devices, config)
    executor = ProcessExecutor(engine.worker_specs, num_procs=4,
                               telemetry=telemetry,
                               straggler_quorum=0.75,
                               straggler_multiplier=1.5)
    try:
        slow_id = engine.worker_ids[-1]
        dispatches = [engine.dispatch(worker_id, 0.3, 0.0, round_index=0)
                      for worker_id in engine.worker_ids]
        hyper = TrainHyper(lr=config.lr, momentum=config.momentum,
                           weight_decay=config.weight_decay,
                           prox_mu=0.0, clip_norm=config.clip_norm)
        requests = [
            TrainRequest(
                worker_id=d.worker_id, ratio=d.ratio, tau=d.tau,
                plan=d.plan, submodel=d.submodel,
                dispatched_state=d.dispatched_state, hyper=hyper,
                emulate_s=0.8 if d.worker_id == slow_id else 0.05,
            )
            for d in dispatches
        ]
        results = executor.run(requests, round_index=0)
        assert [r.worker_id for r in results] \
            == [d.worker_id for d in dispatches]
        assert executor.last_stragglers == [slow_id]
        assert _counter_sum(telemetry.metrics, "stragglers_total",
                            executor="process") == 1
        events = sink.events("straggler_detected")
        assert events and events[0]["attrs"]["workers"] == [slow_id]
    finally:
        executor.close()
        engine.close()


# ----------------------------------------------------------------------
# seam construction
# ----------------------------------------------------------------------
def test_serial_executor_is_default_and_handles_empty(mnist, devices):
    engine = Engine(ClassificationTask(mnist, "cnn"), devices, _config())
    try:
        assert isinstance(engine.executor, SerialExecutor)
        assert engine.executor.run([]) == []
        assert engine.executor.last_stragglers == []
    finally:
        engine.close()


def test_make_executor_rejects_unknown_kind():
    config = _config()
    config.executor = "threads"
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor(config, workers={}, specs=[])


def test_make_executor_rejects_profiler_with_process_pool():
    config = _config(executor="process")
    telemetry = Telemetry(profiler=LayerProfiler(0))
    with pytest.raises(ValueError, match="profiler"):
        make_executor(config, workers={}, specs=[], telemetry=telemetry)
