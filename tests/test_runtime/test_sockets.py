"""Socket framing and the client-side socket transport."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.runtime.sockets import (
    MAX_MESSAGE_BYTES,
    FrameBuffer,
    SocketClosedError,
    SocketTransport,
    encode_message,
    recv_message,
    send_message,
)
from repro.runtime.transport import (
    RetryPolicy,
    TransportError,
    TransportTimeoutError,
    WorkerCrashError,
)
from repro.telemetry import MetricsRegistry


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def test_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        message = ("train", 7, b"\x00\x01" * 500, {"key": [1, 2]})
        send_message(a, message)
        assert recv_message(b) == message
    finally:
        a.close()
        b.close()


def test_frame_buffer_survives_arbitrary_chunking():
    messages = [("op", i, "x" * (i * 13)) for i in range(6)]
    wire = b"".join(encode_message(m) for m in messages)
    buffer = FrameBuffer()
    out = []
    for cut in range(0, len(wire), 7):     # drip-feed 7 bytes at a time
        buffer.feed(wire[cut:cut + 7])
        out.extend(buffer.pop_messages())
    assert out == messages
    assert buffer.pending_bytes() == 0


def test_frame_buffer_rejects_oversized_length_prefix():
    buffer = FrameBuffer()
    buffer.feed(struct.pack("!I", MAX_MESSAGE_BYTES + 1))
    with pytest.raises(TransportError):
        list(buffer.pop_messages())


def test_recv_on_closed_peer_raises():
    a, b = socket.socketpair()
    a.close()
    try:
        with pytest.raises(SocketClosedError):
            recv_message(b)
    finally:
        b.close()


def test_truncated_frame_raises():
    a, b = socket.socketpair()
    try:
        wire = encode_message(("op", 1, "payload"))
        a.sendall(wire[:len(wire) - 3])    # cut the frame short
        a.close()
        with pytest.raises(SocketClosedError):
            recv_message(b)
    finally:
        b.close()


# ----------------------------------------------------------------------
# SocketTransport against a toy server
# ----------------------------------------------------------------------
class _ToyServer:
    """Accept one connection; answer each message via ``handler``."""

    def __init__(self, handler):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.address = self.listener.getsockname()
        self.handler = handler
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        try:
            conn, _ = self.listener.accept()
        except OSError:
            return
        with conn:
            try:
                while True:
                    message = recv_message(conn)
                    for reply in self.handler(message):
                        if reply == "CLOSE":
                            return
                        send_message(conn, reply)
            except (SocketClosedError, OSError):
                pass

    def close(self):
        self.listener.close()
        self.thread.join(timeout=5)


def _transport(server, **retry_kwargs):
    retry = RetryPolicy(**retry_kwargs) if retry_kwargs else None
    return SocketTransport(server.address, retry=retry).connect()


def test_request_matches_seq_and_discards_stale_replies():
    server = _ToyServer(
        lambda m: [("stale", m[1] - 1, None), ("pong", m[1], "ok")]
    )
    transport = _transport(server)
    try:
        assert transport.request(("ping", 4)) == ("pong", 4, "ok")
    finally:
        transport.close()
        server.close()


def test_err_reply_raises_transport_error():
    server = _ToyServer(lambda m: [("err", m[1], "boom traceback")])
    transport = _transport(server)
    try:
        with pytest.raises(TransportError, match="boom"):
            transport.request(("explode", 1))
    finally:
        transport.close()
        server.close()


def test_silent_server_times_out_and_counts_retries():
    server = _ToyServer(lambda m: [])
    metrics = MetricsRegistry(enabled=True)
    retry = RetryPolicy(timeout_s=0.5, max_retries=3, backoff_s=0.02)
    transport = SocketTransport(server.address, retry=retry,
                                metrics=metrics).connect()
    try:
        with pytest.raises(TransportTimeoutError):
            transport.request(("ping", 1))
        retries = sum(
            counter.value for counter in metrics.counters
            if counter.name == "retries_total"
            and counter.labels.get("transport") == "socket"
        )
        assert retries >= 1
    finally:
        transport.close()
        server.close()


def test_connection_drop_mid_request_raises_crash():
    server = _ToyServer(lambda m: ["CLOSE"])
    transport = _transport(server)
    try:
        with pytest.raises(WorkerCrashError):
            transport.request(("ping", 1))
    finally:
        transport.close()
        server.close()


def test_next_message_returns_in_arrival_order():
    server = _ToyServer(
        lambda m: [("first", 100), ("second", 200)]
    )
    transport = _transport(server)
    try:
        transport.send(("kick", 1))
        assert transport.next_message(timeout_s=5.0) == ("first", 100)
        assert transport.next_message(timeout_s=5.0) == ("second", 200)
        assert transport.next_message(timeout_s=0.05) is None
    finally:
        transport.close()
        server.close()
