"""Shared-memory template transport and wire-profile executor tests.

Covers the transport-economics guarantees: templates ship through one
shared-memory segment per plan signature (charged once, bounded by an
LRU with child-cache drop propagation), segments never leak past
``close`` -- normal exit or killed-worker crash -- and the negotiated
sparse profiles run end-to-end through the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.schedulers import make_scheduler
from repro.fl.tasks import ClassificationTask
from repro.runtime import shm
from repro.runtime.codec import TrainHyper
from repro.runtime.executor import ProcessExecutor, TrainRequest
from repro.runtime.pool import ProcessPool, WorkerSpec
from repro.runtime.transport import (
    ProcessTransport,
    TransportError,
    WorkerCrashError,
)
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runtime import Telemetry


@pytest.fixture(scope="module")
def mnist():
    return make_synthetic_mnist(train_per_class=12, test_per_class=4,
                                rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def devices():
    return make_scenario_devices({"A": 2, "B": 2}, np.random.default_rng(7))


def _config(**overrides) -> FLConfig:
    base = dict(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                max_rounds=2, local_iterations=1, batch_size=8, lr=0.05,
                eval_every=10_000, seed=11)
    base.update(overrides)
    return FLConfig(**base)


def _counter_sum(metrics: MetricsRegistry, name: str, **labels) -> float:
    return sum(
        counter.value for counter in metrics.counters
        if counter.name == name and all(
            str(counter.labels.get(key)) == str(value)
            for key, value in labels.items()
        )
    )


def _requests(engine, config, ratio):
    dispatches = [engine.dispatch(worker_id, ratio, 0.0, round_index=0)
                  for worker_id in engine.worker_ids]
    hyper = TrainHyper(lr=config.lr, momentum=config.momentum,
                       weight_decay=config.weight_decay,
                       prox_mu=0.0, clip_norm=config.clip_norm)
    return [
        TrainRequest(worker_id=d.worker_id, ratio=d.ratio, tau=d.tau,
                     plan=d.plan, submodel=d.submodel,
                     dispatched_state=d.dispatched_state, hyper=hyper)
        for d in dispatches
    ]


# ----------------------------------------------------------------------
# shared-memory template lifecycle
# ----------------------------------------------------------------------
def test_template_bytes_charged_once_per_signature(mnist, devices):
    """Two pool members training the same fixed-ratio plan must cost
    ONE template segment on the wire, not one pickled blob each."""
    telemetry = Telemetry(metrics=MetricsRegistry())
    task = ClassificationTask(mnist, "cnn")
    config = _config(executor="process", num_procs=2)
    engine = Engine(task, devices, config, telemetry=telemetry)
    try:
        make_scheduler(config).run(engine)
        executor = engine.executor
        assert len(executor.pool.members) == 2
        # fixed ratio + stable kept sets => a single plan signature,
        # cached by both members from the same segment
        assert len(executor._template_segments) == 1
        ((_, size),) = executor._template_segments.values()
        assert _counter_sum(telemetry.metrics, "wire_bytes_total",
                            kind="template") == size
        for cached in executor._cached_templates.values():
            assert len(cached) == 1
        assert shm.leaked_segments()  # live while the executor is open
    finally:
        engine.close()
    # normal exit: every segment unlinked
    assert shm.leaked_segments() == []


def test_template_store_evicts_and_propagates_drops(mnist, devices):
    """template_cache_limit=1 with two plan signatures forces an
    eviction: counted, segment store bounded, child caches notified."""
    telemetry = Telemetry(metrics=MetricsRegistry())
    task = ClassificationTask(mnist, "cnn")
    config = _config()
    engine = Engine(task, devices, config)
    executor = ProcessExecutor(engine.worker_specs, num_procs=2,
                               telemetry=telemetry,
                               template_cache_limit=1)
    try:
        executor.run(_requests(engine, config, 0.3), round_index=0)
        assert _counter_sum(telemetry.metrics,
                            "dispatch_cache_evictions_total") == 0
        executor.run(_requests(engine, config, 0.6), round_index=1)
        assert _counter_sum(telemetry.metrics,
                            "dispatch_cache_evictions_total") == 1
        # the store stays at its bound and the evicted segment is gone
        assert len(executor._template_segments) == 1
        assert executor._retired_segments == []
        assert len(shm.leaked_segments()) == 1
        # parent-side member caches dropped the evicted key; the drop
        # notices were piggybacked (all members saw round-1 traffic)
        for cached in executor._cached_templates.values():
            assert len(cached) == 1
        assert executor._pending_drops == {}
        # the evicted signature still trains fine: it is re-shipped
        results = executor.run(_requests(engine, config, 0.3),
                               round_index=2)
        assert len(results) == len(engine.worker_ids)
        assert _counter_sum(telemetry.metrics,
                            "dispatch_cache_evictions_total") == 2
    finally:
        executor.close()
        engine.close()
    assert shm.leaked_segments() == []


def test_segments_unlinked_after_worker_crash(mnist, devices):
    """A killed child surfaces as WorkerCrashError and close() still
    unlinks every segment -- no stranded /dev/shm entries."""
    task = ClassificationTask(mnist, "cnn")
    config = _config()
    engine = Engine(task, devices, config)
    executor = ProcessExecutor(engine.worker_specs, num_procs=2)
    try:
        executor.run(_requests(engine, config, 0.3), round_index=0)
        assert shm.leaked_segments()
        for member in executor.pool.members:
            member.proc.kill()
            member.proc.join(timeout=5.0)
        with pytest.raises(WorkerCrashError):
            executor.run(_requests(engine, config, 0.3), round_index=1)
    finally:
        executor.close()
        engine.close()
    assert shm.leaked_segments() == []


def test_template_cache_limit_validation(mnist, devices):
    engine = Engine(ClassificationTask(mnist, "cnn"), devices, _config())
    try:
        with pytest.raises(ValueError, match="template_cache_limit"):
            ProcessExecutor(engine.worker_specs, num_procs=1,
                            template_cache_limit=0)
        with pytest.raises(ValueError, match="wire_profile"):
            ProcessExecutor(engine.worker_specs, num_procs=1,
                            wire_profile="dense")
    finally:
        engine.close()


# ----------------------------------------------------------------------
# negotiated wire profiles end-to-end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("profile", ["sparse", "sparse+quantized"])
def test_sparse_profiles_run_through_the_engine(mnist, devices, profile):
    telemetry = Telemetry(metrics=MetricsRegistry())
    task = ClassificationTask(mnist, "cnn")
    config = _config(executor="process", num_procs=2,
                     wire_profile=profile, wire_keep_fraction=0.25)
    engine = Engine(task, devices, config, telemetry=telemetry)
    try:
        assert engine.executor.wire_profile == profile
        history = make_scheduler(config).run(engine)
        assert len(history.rounds) == config.max_rounds
        assert all(np.isfinite(record.train_loss)
                   for record in history.rounds)
        # the contribution leg must genuinely shrink: dispatches ship
        # the same states dense, so sparse replies (keep 0.25) must
        # come in well under the dispatch volume
        contribution = _counter_sum(telemetry.metrics,
                                    "wire_bytes_total",
                                    kind="contribution")
        dispatch = _counter_sum(telemetry.metrics, "wire_bytes_total",
                                kind="dispatch")
        assert 0 < contribution < 0.75 * dispatch
    finally:
        engine.close()
    assert shm.leaked_segments() == []


def test_sparse_profile_matches_serial_at_full_keep(mnist, devices):
    """keep_fraction=1.0 sparse ships every moved position exactly, so
    the run must stay bitwise identical to the serial executor."""
    task_factory = lambda: ClassificationTask(mnist, "cnn")  # noqa: E731

    def run(executor, profile):
        config = _config(executor=executor, num_procs=2,
                         wire_profile=profile, wire_keep_fraction=1.0)
        engine = Engine(task_factory(), devices, config)
        try:
            history = make_scheduler(config).run(engine)
            return [record.train_loss for record in history.rounds], {
                key: value.copy()
                for key, value in engine.model.state_dict().items()
            }
        finally:
            engine.close()

    serial_losses, serial_state = run("serial", "exact")
    sparse_losses, sparse_state = run("process", "sparse")
    assert sparse_losses == serial_losses
    for key in serial_state:
        np.testing.assert_array_equal(sparse_state[key],
                                      serial_state[key])


# ----------------------------------------------------------------------
# transport bug sweep: error replies must raise, not return
# ----------------------------------------------------------------------
def test_transport_request_raises_on_err_reply():
    rng = np.random.default_rng(0)
    device = make_scenario_devices({"A": 1}, np.random.default_rng(3))[0]
    spec = WorkerSpec(
        worker_id=0, seed=11,
        shard_inputs=rng.normal(size=(8, 1, 4, 4)).astype(np.float32),
        shard_targets=rng.integers(0, 2, size=8).astype(np.int64),
        batch_size=4, device=device, jitter_sigma=0.05, num_samples=8,
    )
    pool = ProcessPool([spec], num_procs=1)
    try:
        transport = ProcessTransport(pool.members[0])
        # a garbage frame makes the child reply ("err", seq, traceback);
        # the pre-fix transport returned that tuple as a success
        with pytest.raises(TransportError, match="raised"):
            transport.request(
                ("train", 1, b"garbage", ("cached", None), ())
            )
        # the channel survives the failed call
        assert transport.request(("ping", 2, 0.0)) == ("pong", 2)
    finally:
        pool.close(join_timeout_s=1.0)
