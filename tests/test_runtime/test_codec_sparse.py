"""Sparse-delta and negotiated-profile wire tests.

Mirrors the strict-rejection discipline of ``test_codec.py`` for the
new frame shapes: hypothesis round-trips, every registry model under
both sparse profiles, truncation/corruption/flag-mismatch rejection,
and the quantized-scale/code validation the bug sweep added.
"""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.registry import build_model
from repro.pruning.iss import build_iss_plan, extract_iss_submodel
from repro.pruning.quantize import quantize_array
from repro.pruning.structured import build_pruning_plan, extract_submodel
from repro.runtime.codec import (
    WIRE_PROFILES,
    TrainHyper,
    WireFormatError,
    decode_contribution,
    decode_dispatch,
    encode_contribution,
    encode_dispatch,
)
from repro.verify.strategies import state_dicts

HYPER = TrainHyper(lr=0.05)


def _reseal(frame: bytearray) -> bytes:
    body = bytes(frame[:-4])
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def _trained_like(state, seed=0, scale=0.01):
    rng = np.random.default_rng(seed)
    return {
        key: (value + rng.normal(0, scale, value.shape)).astype(value.dtype)
        for key, value in state.items()
    }


# ----------------------------------------------------------------------
# hypothesis round-trips
# ----------------------------------------------------------------------
@given(state=state_dicts(), seed=st.integers(0, 2 ** 16),
       keep=st.floats(0.05, 1.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_sparse_roundtrip_exact_at_kept_positions(state, seed, keep):
    trained = _trained_like(state, seed)
    frame = encode_contribution(4, trained, train_loss=0.5,
                                wall_time_s=0.1, profile="sparse",
                                base=state, keep_fraction=keep)
    payload = decode_contribution(frame, expect_profile="sparse")
    assert payload.profile == "sparse"
    dense = payload.materialise(state)
    assert set(dense) == set(state)
    for key in state:
        flat = dense[key].reshape(-1)
        kept = payload.sparse[key].indices
        # shipped positions carry the exact trained values, unshipped
        # positions keep the dispatched base bit-for-bit
        np.testing.assert_array_equal(
            flat[kept], trained[key].reshape(-1)[kept]
        )
        mask = np.ones(flat.size, dtype=bool)
        mask[kept] = False
        np.testing.assert_array_equal(
            flat[mask], state[key].reshape(-1)[mask]
        )


@given(state=state_dicts(), seed=st.integers(0, 2 ** 16),
       bits=st.integers(2, 16))
@settings(max_examples=50, deadline=None)
def test_sparse_quantized_roundtrip_matches_dequantize(state, seed, bits):
    trained = _trained_like(state, seed)
    frame = encode_contribution(4, trained, train_loss=0.5,
                                wall_time_s=0.1,
                                profile="sparse+quantized", base=state,
                                keep_fraction=0.5, quantize_bits=bits)
    payload = decode_contribution(frame,
                                  expect_profile="sparse+quantized")
    dense = payload.materialise(state)
    for key in state:
        entry = payload.sparse[key]
        flat_base = state[key].reshape(-1).astype(np.float64)
        flat_trained = trained[key].reshape(-1).astype(np.float64)
        deltas = flat_trained[entry.indices] - flat_base[entry.indices]
        codes, scale = quantize_array(deltas, bits)
        np.testing.assert_array_equal(entry.codes, codes)
        assert entry.scale == scale
        expected = (
            flat_base[entry.indices]
            + codes.astype(np.float64) * scale
        ).astype(state[key].dtype)
        np.testing.assert_array_equal(
            dense[key].reshape(-1)[entry.indices], expected
        )


@given(state=state_dicts(),
       profile=st.sampled_from(WIRE_PROFILES),
       keep=st.floats(0.1, 1.0, allow_nan=False),
       bits=st.integers(2, 16))
@settings(max_examples=50, deadline=None)
def test_negotiated_dispatch_roundtrip(state, profile, keep, bits):
    from repro.pruning.plan import PruningPlan
    frame = encode_dispatch(
        7, PruningPlan(ratio=0.0), state, tau=3, hyper=HYPER,
        reply_profile=profile, reply_keep_fraction=keep,
        reply_quantize_bits=bits,
    )
    payload = decode_dispatch(frame)
    assert payload.reply_profile == profile
    if profile == "exact":
        assert payload.reply_keep_fraction is None
        assert payload.reply_quantize_bits is None
    else:
        assert payload.reply_keep_fraction == keep
        assert payload.reply_quantize_bits == bits
    for key in state:
        np.testing.assert_array_equal(payload.state[key], state[key])


def test_exact_dispatch_bytes_unchanged_by_negotiation_fields():
    """An exact-profile dispatch is byte-identical to a frame encoded
    with no negotiation arguments at all (wire compatibility)."""
    from repro.pruning.plan import PruningPlan
    state = {"w": np.arange(6, dtype=np.float32)}
    plain = encode_dispatch(1, PruningPlan(ratio=0.0), state, tau=1,
                            hyper=HYPER)
    negotiated = encode_dispatch(1, PruningPlan(ratio=0.0), state, tau=1,
                                 hyper=HYPER, reply_profile="exact")
    assert plain == negotiated


def test_full_keep_sparse_is_lossless():
    state = {"w": np.arange(20, dtype=np.float32).reshape(4, 5),
             "b": np.zeros(4, dtype=np.float32)}
    trained = _trained_like(state, seed=3)
    frame = encode_contribution(0, trained, train_loss=0.0,
                                wall_time_s=0.0, profile="sparse",
                                base=state, keep_fraction=1.0)
    dense = decode_contribution(frame).materialise(state)
    for key in state:
        np.testing.assert_array_equal(dense[key], trained[key])


def test_materialise_never_mutates_the_base():
    state = {"w": np.zeros(8, dtype=np.float32)}
    trained = {"w": np.ones(8, dtype=np.float32)}
    frame = encode_contribution(0, trained, train_loss=0.0,
                                wall_time_s=0.0, profile="sparse",
                                base=state, keep_fraction=1.0)
    payload = decode_contribution(frame)
    payload.materialise(state)
    np.testing.assert_array_equal(state["w"], np.zeros(8))


# ----------------------------------------------------------------------
# every registry model, both sparse profiles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("model_name", ["cnn", "alexnet", "vgg19",
                                        "resnet50", "lstm_lm"])
@pytest.mark.parametrize("profile", ["sparse", "sparse+quantized"])
def test_registry_models_sparse_roundtrip(model_name, profile):
    rng = np.random.default_rng(11)
    model = build_model(model_name, rng=rng)
    if model_name == "lstm_lm":
        plan = build_iss_plan(model, 0.35)
        submodel = extract_iss_submodel(model, plan,
                                        np.random.default_rng(12))
    else:
        plan = build_pruning_plan(model, 0.35)
        submodel = extract_submodel(model, plan, np.random.default_rng(12))
    base = submodel.state_dict()
    trained = _trained_like(base, seed=13)
    frame = encode_contribution(0, trained, train_loss=0.1,
                                wall_time_s=0.2, profile=profile,
                                base=base, keep_fraction=0.25)
    payload = decode_contribution(frame, expect_profile=profile)
    dense = payload.materialise(base)
    total = sum(value.size for value in base.values())
    kept = sum(entry.indices.size for entry in payload.sparse.values())
    assert kept == max(1, round(total * 0.25))
    assert len(frame) / total < 4.0
    for key in base:
        assert dense[key].shape == base[key].shape
        assert dense[key].dtype == base[key].dtype
        idx = payload.sparse[key].indices
        if profile == "sparse":
            np.testing.assert_array_equal(
                dense[key].reshape(-1)[idx],
                trained[key].reshape(-1)[idx],
            )
    # single-byte corruption of a real sparse frame must raise
    corrupt = bytearray(frame)
    corrupt[len(corrupt) // 3] ^= 0x01
    with pytest.raises(WireFormatError):
        decode_contribution(bytes(corrupt))


# ----------------------------------------------------------------------
# rejection
# ----------------------------------------------------------------------
def _sparse_frame(keep=0.5, quantized=False):
    state = {"w": np.arange(12, dtype=np.float32).reshape(3, 4),
             "b": np.ones(3, dtype=np.float32)}
    trained = _trained_like(state, seed=1)
    return state, encode_contribution(
        2, trained, train_loss=0.5, wall_time_s=0.1,
        profile="sparse+quantized" if quantized else "sparse",
        base=state, keep_fraction=keep,
    )


def test_sparse_truncated_prefixes_rejected():
    _, frame = _sparse_frame()
    for cut in range(len(frame)):
        with pytest.raises(WireFormatError):
            decode_contribution(frame[:cut])


def test_sparse_flipped_byte_rejected_by_crc():
    _, frame = _sparse_frame(quantized=True)
    for offset in (0, 7, len(frame) // 2, len(frame) - 1):
        corrupt = bytearray(frame)
        corrupt[offset] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_contribution(bytes(corrupt))


def test_profile_mismatch_rejected():
    state, frame = _sparse_frame()
    with pytest.raises(WireFormatError, match="profile mismatch"):
        decode_contribution(frame, expect_profile="exact")
    with pytest.raises(WireFormatError, match="profile mismatch"):
        decode_contribution(frame, expect_profile="sparse+quantized")
    exact = encode_contribution(2, state, train_loss=0.0, wall_time_s=0.0)
    with pytest.raises(WireFormatError, match="profile mismatch"):
        decode_contribution(exact, expect_profile="sparse")


def test_unknown_flag_bits_rejected():
    _, frame = _sparse_frame()
    patched = bytearray(frame)
    patched[7] |= 0x40
    with pytest.raises(WireFormatError, match="unknown flag"):
        decode_contribution(_reseal(patched))


def test_sparse_dispatch_flag_rejected():
    from repro.pruning.plan import PruningPlan
    state = {"w": np.zeros(4, dtype=np.float32)}
    frame = bytearray(encode_dispatch(0, PruningPlan(ratio=0.0), state,
                                      tau=1, hyper=HYPER))
    frame[7] |= 0x02  # FLAG_SPARSE is contribution-only
    with pytest.raises(WireFormatError, match="sparse"):
        decode_dispatch(_reseal(frame))


def test_unknown_reply_profile_code_rejected():
    from repro.pruning.plan import PruningPlan
    state = {"w": np.zeros(4, dtype=np.float32)}
    frame = bytearray(encode_dispatch(0, PruningPlan(ratio=0.0), state,
                                      tau=1, hyper=HYPER))
    frame[7] |= 0x0C  # profile code 3 is unassigned
    with pytest.raises(WireFormatError, match="profile"):
        decode_dispatch(_reseal(frame))


def test_profile_bits_on_contribution_rejected():
    _, frame = _sparse_frame()
    patched = bytearray(frame)
    patched[7] |= 0x04
    with pytest.raises(WireFormatError, match="profile"):
        decode_contribution(_reseal(patched))


def _patch_first(frame: bytes, needle: bytes, replacement: bytes) -> bytes:
    offset = frame.index(needle)
    patched = bytearray(frame)
    patched[offset:offset + len(replacement)] = replacement
    return _reseal(patched)


def test_non_increasing_sparse_indices_rejected():
    state = {"w": np.zeros(16, dtype=np.float32)}
    trained = {"w": np.arange(16, dtype=np.float32)}
    frame = encode_contribution(0, trained, train_loss=0.0,
                                wall_time_s=0.0, profile="sparse",
                                base=state, keep_fraction=0.25)
    payload = decode_contribution(frame)
    indices = payload.sparse["w"].indices
    needle = indices.astype("<u4").tobytes()
    swapped = indices[::-1].astype("<u4").tobytes()
    with pytest.raises(WireFormatError, match="strictly"):
        decode_contribution(_patch_first(frame, needle, swapped))


def test_out_of_range_sparse_index_rejected():
    state = {"w": np.zeros(16, dtype=np.float32)}
    trained = {"w": np.arange(16, dtype=np.float32)}
    frame = encode_contribution(0, trained, train_loss=0.0,
                                wall_time_s=0.0, profile="sparse",
                                base=state, keep_fraction=0.25)
    payload = decode_contribution(frame)
    indices = payload.sparse["w"].indices.astype("<u4")
    needle = indices.tobytes()
    oob = indices.copy()
    oob[-1] = 16  # one past the end of the 16-element tensor
    with pytest.raises(WireFormatError, match="out of range"):
        decode_contribution(_patch_first(frame, needle, oob.tobytes()))


def test_zero_scale_on_wire_rejected():
    _, frame = _sparse_frame(quantized=True)
    payload = decode_contribution(frame)
    scale = payload.sparse["w"].scale
    needle = struct.pack("<d", scale)
    with pytest.raises(WireFormatError, match="scale"):
        decode_contribution(
            _patch_first(frame, needle, struct.pack("<d", 0.0))
        )
    with pytest.raises(WireFormatError, match="scale"):
        decode_contribution(
            _patch_first(frame, needle, struct.pack("<d", float("nan")))
        )
    with pytest.raises(WireFormatError, match="scale"):
        decode_contribution(
            _patch_first(frame, needle, struct.pack("<d", -1.0))
        )


def test_out_of_range_quantization_codes_rejected():
    _, frame = _sparse_frame(quantized=True)
    payload = decode_contribution(frame)
    codes = payload.sparse["w"].codes.astype("<i2")
    needle = codes.tobytes()
    hot = codes.copy()
    hot[0] = 200  # 8-bit symmetric codes cap at 127
    with pytest.raises(WireFormatError, match="cap"):
        decode_contribution(_patch_first(frame, needle, hot.tobytes()))


def test_dense_quantized_zero_scale_rejected_too():
    """The dense-quantized path (exact profile + quantize_bits) gets the
    same scale validation as the sparse one."""
    state = {"w": np.ones(8, dtype=np.float32)}
    frame = encode_contribution(0, state, train_loss=0.0, wall_time_s=0.0,
                                quantize_bits=8)
    payload = decode_contribution(frame)
    assert payload.state is not None  # sanity: dense quantized decodes
    codes, scale = quantize_array(state["w"], 8)
    needle = struct.pack("<d", scale)
    with pytest.raises(WireFormatError, match="scale"):
        decode_contribution(
            _patch_first(frame, needle, struct.pack("<d", 0.0))
        )


def test_sparse_encode_requires_base():
    state = {"w": np.zeros(4, dtype=np.float32)}
    with pytest.raises(WireFormatError, match="base"):
        encode_contribution(0, state, train_loss=0.0, wall_time_s=0.0,
                            profile="sparse")


def test_materialise_requires_base():
    _, frame = _sparse_frame()
    with pytest.raises(WireFormatError, match="base"):
        decode_contribution(frame).materialise()


def test_unknown_profile_name_rejected_on_encode():
    state = {"w": np.zeros(4, dtype=np.float32)}
    with pytest.raises(WireFormatError, match="profile"):
        encode_contribution(0, state, train_loss=0.0, wall_time_s=0.0,
                            profile="dense")


# ----------------------------------------------------------------------
# quantizer guards (bug sweep: degenerate scales)
# ----------------------------------------------------------------------
def test_quantize_all_zero_tensor_roundtrips_cleanly():
    codes, scale = quantize_array(np.zeros(16, dtype=np.float32), 8)
    assert scale == 1.0
    np.testing.assert_array_equal(codes, np.zeros(16, dtype=np.int16))
    restored = codes.astype(np.float64) * scale
    assert np.all(np.isfinite(restored))
    np.testing.assert_array_equal(restored, np.zeros(16))


def test_quantize_subnormal_peak_never_underflows_scale():
    tiny = np.full(4, 1e-310, dtype=np.float64)  # subnormal peak
    codes, scale = quantize_array(tiny, 8)
    assert np.isfinite(scale) and scale > 0.0
    assert np.all(np.isfinite(codes.astype(np.float64) * scale))


def test_quantize_non_finite_values_rejected():
    with pytest.raises(ValueError, match="non-finite"):
        quantize_array(np.array([1.0, np.inf], dtype=np.float32), 8)
    with pytest.raises(ValueError, match="non-finite"):
        quantize_array(np.array([np.nan], dtype=np.float32), 8)


def test_quantized_wire_roundtrip_of_zero_tensor():
    """End-to-end: an all-zero tensor survives the quantized wire as
    exact zeros (the pre-guard failure mode was NaN/garbage here)."""
    state = {"w": np.zeros((3, 3), dtype=np.float32)}
    frame = encode_contribution(0, state, train_loss=0.0, wall_time_s=0.0,
                                quantize_bits=8)
    decoded = decode_contribution(frame).state["w"]
    np.testing.assert_array_equal(decoded, state["w"])
