"""Wire-codec tests: hypothesis round-trips, strict rejection, and
round-trips over every registry model's real extracted sub-models."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.models.registry import build_model
from repro.pruning.quantize import quantize_state_dict
from repro.pruning.iss import build_iss_plan, extract_iss_submodel
from repro.pruning.structured import build_pruning_plan, extract_submodel
from repro.runtime.codec import (
    KIND_CONTRIBUTION,
    KIND_DISPATCH,
    WIRE_VERSION,
    TrainHyper,
    WireFormatError,
    decode_contribution,
    decode_dispatch,
    encode_contribution,
    encode_dispatch,
    frame_kind,
)
from repro.verify.strategies import (
    linear_chain_scenarios,
    state_dicts,
)

HYPER = TrainHyper(lr=0.05, momentum=0.9, weight_decay=1e-4,
                   prox_mu=0.01, clip_norm=5.0)


def _assert_states_equal(decoded, original):
    assert set(decoded) == set(original)
    for key, value in original.items():
        got = decoded[key]
        assert got.shape == np.asarray(value).shape
        np.testing.assert_array_equal(got, value)


def _assert_plans_equal(decoded, original):
    decoded_layers = dict(decoded.items())
    original_layers = dict(original.items())
    assert decoded.ratio == original.ratio
    assert set(decoded_layers) == set(original_layers)
    for name, entry in original_layers.items():
        got = decoded_layers[name]
        assert got.kind == entry.kind
        assert got.out_full == entry.out_full
        np.testing.assert_array_equal(got.kept_out, entry.kept_out)
        assert (got.kept_in is None) == (entry.kept_in is None)
        if entry.kept_in is not None:
            assert got.in_full == entry.in_full
            np.testing.assert_array_equal(got.kept_in, entry.kept_in)


# ----------------------------------------------------------------------
# hypothesis round-trips
# ----------------------------------------------------------------------
@given(scenario=linear_chain_scenarios())
@settings(max_examples=50, deadline=None)
def test_dispatch_roundtrip(scenario):
    _, plan, sub_state, _ = scenario
    frame = encode_dispatch(3, plan, sub_state, tau=7, hyper=HYPER,
                            emulate_s=0.25)
    assert frame_kind(frame) == KIND_DISPATCH
    payload = decode_dispatch(frame)
    assert payload.worker_id == 3
    assert payload.tau == 7
    assert payload.emulate_s == 0.25
    assert payload.hyper == HYPER
    _assert_plans_equal(payload.plan, plan)
    _assert_states_equal(payload.state, sub_state)


@given(state=state_dicts())
@settings(max_examples=50, deadline=None)
def test_contribution_roundtrip(state):
    frame = encode_contribution(5, state, train_loss=1.25,
                                wall_time_s=0.5, num_samples=48)
    assert frame_kind(frame) == KIND_CONTRIBUTION
    payload = decode_contribution(frame)
    assert payload.worker_id == 5
    assert payload.num_samples == 48
    assert payload.train_loss == 1.25
    assert payload.wall_time_s == 0.5
    _assert_states_equal(payload.state, state)


@given(state=state_dicts())
@settings(max_examples=30, deadline=None)
def test_quantized_roundtrip_matches_dequantize(state):
    """Quantized frames are lossy vs the input but must decode to
    exactly what quantize -> dequantize produces."""
    frame = encode_contribution(1, state, train_loss=0.0, wall_time_s=0.0,
                                quantize_bits=8)
    payload = decode_contribution(frame)
    expected = quantize_state_dict(state, bits=8).dequantize()
    for key, value in expected.items():
        np.testing.assert_array_equal(
            payload.state[key], value.astype(np.float32)
        )
        assert payload.state[key].dtype == np.float32


def test_none_clip_norm_roundtrips():
    hyper = TrainHyper(lr=0.1, clip_norm=None)
    state = {"w": np.ones((2, 2), dtype=np.float32)}
    from repro.pruning.plan import PruningPlan
    frame = encode_dispatch(0, PruningPlan(ratio=0.0), state, tau=1,
                            hyper=hyper)
    assert decode_dispatch(frame).hyper.clip_norm is None


def test_float64_tensors_roundtrip():
    state = {"w": np.linspace(0, 1, 7, dtype=np.float64)}
    frame = encode_contribution(0, state, train_loss=0.0, wall_time_s=0.0)
    decoded = decode_contribution(frame).state["w"]
    assert decoded.dtype == np.float64
    np.testing.assert_array_equal(decoded, state["w"])


# ----------------------------------------------------------------------
# rejection: corrupt frames raise WireFormatError, never mis-decode
# ----------------------------------------------------------------------
def _sample_frame() -> bytes:
    state = {"w": np.arange(12, dtype=np.float32).reshape(3, 4),
             "b": np.ones(3, dtype=np.float32)}
    return encode_contribution(2, state, train_loss=0.5, wall_time_s=0.1)


def test_truncated_prefixes_rejected():
    frame = _sample_frame()
    # every strict prefix must be rejected (truncation at any offset)
    for cut in range(len(frame)):
        with pytest.raises(WireFormatError):
            decode_contribution(frame[:cut])


def test_flipped_byte_rejected_by_crc():
    frame = bytearray(_sample_frame())
    for offset in (0, 5, len(frame) // 2, len(frame) - 1):
        corrupt = bytearray(frame)
        corrupt[offset] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_contribution(bytes(corrupt))


def test_trailing_garbage_rejected():
    with pytest.raises(WireFormatError):
        decode_contribution(_sample_frame() + b"\x00")


def test_version_mismatch_rejected():
    import struct
    import zlib
    frame = bytearray(_sample_frame())
    struct.pack_into("<H", frame, 4, WIRE_VERSION + 1)
    # re-seal so the version check (not the CRC) is what fires
    body = bytes(frame[:-4])
    sealed = body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
    with pytest.raises(WireFormatError, match="version"):
        decode_contribution(sealed)


def test_wrong_kind_rejected():
    frame = _sample_frame()
    with pytest.raises(WireFormatError, match="kind"):
        decode_dispatch(frame)


def test_kept_index_out_of_range_rejected():
    from repro.pruning.plan import LayerPrune, PruningPlan
    plan = PruningPlan(ratio=0.5)
    plan.add("fc", LayerPrune(kind="linear",
                              kept_out=np.array([0, 1], dtype=np.intp),
                              out_full=4))
    state = {"fc.weight": np.zeros((2, 3), dtype=np.float32)}
    frame = bytearray(encode_dispatch(0, plan, state, tau=1,
                                      hyper=TrainHyper(lr=0.1)))
    import struct
    import zlib
    # locate the plan entry by its length-prefixed name, skip the kind
    # byte and the (out_full, count) pair, then patch kept index 1 -> 9
    # (out of range for out_full=4) and re-seal
    entry = bytes(frame).index(b"\x02\x00fc")
    offset = entry + 4 + 1 + 8
    assert frame[offset:offset + 8] == np.array([0, 1], dtype="<u4").tobytes()
    frame[offset:offset + 8] = np.array([0, 9], dtype="<u4").tobytes()
    body = bytes(frame[:-4])
    sealed = body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
    with pytest.raises(WireFormatError, match="out of range"):
        decode_dispatch(sealed)


# ----------------------------------------------------------------------
# every registry model round-trips under verify-preset ratios
# ----------------------------------------------------------------------
@pytest.mark.parametrize("model_name", ["cnn", "alexnet", "vgg19",
                                        "resnet50", "lstm_lm"])
@pytest.mark.parametrize("ratio", [0.0, 0.35, 0.7])
def test_registry_models_roundtrip(model_name, ratio):
    rng = np.random.default_rng(11)
    model = build_model(model_name, rng=rng)
    if model_name == "lstm_lm":
        plan = build_iss_plan(model, ratio)
        submodel = extract_iss_submodel(model, plan,
                                        np.random.default_rng(12))
    else:
        plan = build_pruning_plan(model, ratio)
        submodel = extract_submodel(model, plan, np.random.default_rng(12))
    state = submodel.state_dict()
    frame = encode_dispatch(0, plan, state, tau=2,
                            hyper=TrainHyper(lr=0.05))
    payload = decode_dispatch(frame)
    _assert_plans_equal(payload.plan, plan)
    _assert_states_equal(payload.state, state)
    # corrupting any single byte of a real frame must raise, not decode
    corrupt = bytearray(frame)
    corrupt[len(corrupt) // 3] ^= 0x01
    with pytest.raises(WireFormatError):
        decode_dispatch(bytes(corrupt))
