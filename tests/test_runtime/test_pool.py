"""WorkerSpec reconstruction parity and process-pool plumbing.

The RNG-derivation contract pinned here (see ``Worker.__init__`` and
``repro.runtime.pool``): one generator seeded from ``WorkerSpec.seed``
is consumed first by the data iterator's construction and then by the
worker's single timing-seed draw.  A spec-rebuilt worker must carry
bitwise-identical jitter and batch streams, and the construction order
is load-bearing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import BatchIterator
from repro.data.synthetic import make_synthetic_mnist
from repro.fl.config import FLConfig
from repro.fl.engine import Engine
from repro.fl.tasks import ClassificationTask, _SequenceBatchIterator
from repro.fl.worker import Worker
from repro.runtime.pool import ProcessPool, WorkerSpec
from repro.simulation.cluster import make_scenario_devices


def _device(index: int = 0):
    return make_scenario_devices({"A": 2}, np.random.default_rng(3))[index]


def _batch_spec(seed: int = 123, worker_id: int = 5) -> WorkerSpec:
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(24, 1, 8, 8)).astype(np.float32)
    targets = rng.integers(0, 4, size=24).astype(np.int64)
    return WorkerSpec(
        worker_id=worker_id, seed=seed, shard_inputs=inputs,
        shard_targets=targets, batch_size=8, device=_device(),
        jitter_sigma=0.08, num_samples=24,
    )


def _sequence_spec(seed: int = 77, worker_id: int = 2) -> WorkerSpec:
    rng = np.random.default_rng(1)
    inputs = rng.integers(0, 30, size=(10, 6, 4)).astype(np.int64)
    targets = rng.integers(0, 30, size=(10, 6, 4)).astype(np.int64)
    return WorkerSpec(
        worker_id=worker_id, seed=seed, shard_inputs=inputs,
        shard_targets=targets, batch_size=4, device=_device(),
        jitter_sigma=0.05, num_samples=10, iterator_kind="sequence",
    )


def _rng_state(generator: np.random.Generator):
    return generator.bit_generator.state


# ----------------------------------------------------------------------
# RNG-derivation contract
# ----------------------------------------------------------------------
def test_batch_spec_rebuild_matches_manual_construction():
    spec = _batch_spec()
    rebuilt = spec.build()

    rng = np.random.default_rng(spec.seed)
    iterator = BatchIterator(spec.shard_inputs, spec.shard_targets,
                             spec.batch_size, rng=rng)
    reference = Worker(spec.worker_id, iterator, spec.device,
                       jitter_sigma=spec.jitter_sigma, rng=rng,
                       num_samples=spec.num_samples)

    assert _rng_state(rebuilt.timing.rng) == _rng_state(reference.timing.rng)
    assert _rng_state(rebuilt.rng) == _rng_state(reference.rng)
    for _ in range(6):
        got = rebuilt.iterator.next_batch()
        want = reference.iterator.next_batch()
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])
    # the jitter streams stay locked after the batch draws too
    assert np.array_equal(rebuilt.timing.rng.normal(size=8),
                          reference.timing.rng.normal(size=8))


def test_sequence_spec_rebuild_matches_manual_construction():
    spec = _sequence_spec()
    rebuilt = spec.build()

    rng = np.random.default_rng(spec.seed)
    iterator = _SequenceBatchIterator(spec.shard_inputs,
                                      spec.shard_targets, rng)
    reference = Worker(spec.worker_id, iterator, spec.device,
                       jitter_sigma=spec.jitter_sigma, rng=rng,
                       num_samples=spec.num_samples)

    assert _rng_state(rebuilt.timing.rng) == _rng_state(reference.timing.rng)
    for _ in range(6):
        got = rebuilt.iterator.next_batch()
        want = reference.iterator.next_batch()
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])


def test_engine_specs_rebuild_engine_workers_exactly():
    """The regression the satellite asks for: a spec captured by the
    engine rebuilds a worker whose jitter AND batch streams are
    bitwise-identical to the engine's own in-process worker."""
    dataset = make_synthetic_mnist(train_per_class=12, test_per_class=4,
                                   rng=np.random.default_rng(0))
    task = ClassificationTask(dataset, "cnn")
    devices = make_scenario_devices({"A": 2, "B": 2},
                                    np.random.default_rng(7))
    config = FLConfig(strategy="fixed", strategy_kwargs={"ratio": 0.3},
                      max_rounds=1, local_iterations=1, batch_size=8,
                      eval_every=10, seed=5)
    engine = Engine(task, devices, config)
    try:
        assert len(engine.worker_specs) == len(engine.workers)
        for spec in engine.worker_specs:
            live = engine.workers[spec.worker_id]
            rebuilt = spec.build()
            assert _rng_state(rebuilt.timing.rng) \
                == _rng_state(live.timing.rng)
            assert rebuilt.num_samples == live.num_samples
            for _ in range(3):
                got = rebuilt.iterator.next_batch()
                want = live.iterator.next_batch()
                assert np.array_equal(got[0], want[0])
                assert np.array_equal(got[1], want[1])
    finally:
        engine.close()


def test_construction_order_is_load_bearing():
    """Drawing the timing seed BEFORE the iterator's construction must
    shift the jitter stream -- guards against reordering
    ``Engine.__init__`` / ``WorkerSpec.build`` without updating both."""
    spec = _batch_spec()
    reference = spec.build()

    rng = np.random.default_rng(spec.seed)
    swapped = Worker(spec.worker_id, iterator=None, device=spec.device,
                     jitter_sigma=spec.jitter_sigma, rng=rng,
                     num_samples=spec.num_samples)
    assert _rng_state(swapped.timing.rng) != _rng_state(reference.timing.rng)


def test_iterator_kind_validated():
    with pytest.raises(ValueError, match="iterator_kind"):
        _spec = _batch_spec()
        WorkerSpec(
            worker_id=0, seed=1, shard_inputs=_spec.shard_inputs,
            shard_targets=_spec.shard_targets, batch_size=4,
            device=_spec.device, jitter_sigma=0.1, num_samples=4,
            iterator_kind="stream",
        )


# ----------------------------------------------------------------------
# pool plumbing
# ----------------------------------------------------------------------
def test_pool_round_robin_assignment_is_deterministic():
    specs = [_batch_spec(seed=10 + wid, worker_id=wid)
             for wid in (3, 1, 2, 0)]
    pool = ProcessPool(specs, num_procs=2)
    try:
        assert len(pool) == 2
        # sorted ids, dealt round-robin
        assert pool.members[0].worker_ids == [0, 2]
        assert pool.members[1].worker_ids == [1, 3]
        for member in pool.members:
            for worker_id in member.worker_ids:
                assert pool.by_worker[worker_id] is member
    finally:
        pool.close()


def test_pool_size_clamped_to_fleet():
    specs = [_batch_spec(seed=9, worker_id=0)]
    pool = ProcessPool(specs, num_procs=8)
    try:
        assert len(pool) == 1
    finally:
        pool.close()


def test_pool_rejects_empty_fleet():
    with pytest.raises(ValueError, match="at least one"):
        ProcessPool([])
