"""Transport semantics: retry/backoff, timeouts, crashes, stragglers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.pool import ProcessPool, WorkerSpec
from repro.runtime.transport import (
    ProcessTransport,
    RetryPolicy,
    StragglerDetector,
    TransportTimeoutError,
    WorkerCrashError,
)
from repro.simulation.cluster import make_scenario_devices
from repro.telemetry.metrics import MetricsRegistry


def _make_pool() -> ProcessPool:
    rng = np.random.default_rng(0)
    device = make_scenario_devices({"A": 1}, np.random.default_rng(3))[0]
    spec = WorkerSpec(
        worker_id=0, seed=11,
        shard_inputs=rng.normal(size=(8, 1, 4, 4)).astype(np.float32),
        shard_targets=rng.integers(0, 2, size=8).astype(np.int64),
        batch_size=4, device=device, jitter_sigma=0.05, num_samples=8,
    )
    return ProcessPool([spec], num_procs=1)


def _retry_sum(metrics: MetricsRegistry) -> float:
    return sum(counter.value for counter in metrics.counters
               if counter.name == "retries_total")


def test_backoff_schedule():
    policy = RetryPolicy(backoff_s=0.25, backoff_factor=2.0)
    assert policy.backoff(0) == pytest.approx(0.25)
    assert policy.backoff(2) == pytest.approx(1.0)


def test_ping_roundtrip():
    pool = _make_pool()
    try:
        transport = ProcessTransport(pool.members[0])
        assert transport.request(("ping", 1, 0.0)) == ("pong", 1)
    finally:
        pool.close()


def test_delayed_reply_provokes_resend_and_duplicates_are_discarded():
    pool = _make_pool()
    try:
        metrics = MetricsRegistry()
        retry = RetryPolicy(timeout_s=20.0, max_retries=100,
                            backoff_s=0.05, backoff_factor=1.0)
        transport = ProcessTransport(pool.members[0], retry=retry,
                                     metrics=metrics)
        # the child sleeps 0.4s before answering, so the 0.05s backoff
        # schedule resends the ping several times...
        assert transport.request(("ping", 1, 0.4)) == ("pong", 1)
        assert _retry_sum(metrics) >= 1
        # ...and every duplicate pong(1) the resends provoked must be
        # discarded by sequence number, not returned for seq 2
        assert transport.request(("ping", 2, 0.0)) == ("pong", 2)
    finally:
        pool.close(join_timeout_s=1.0)


def test_exhausted_budget_raises_typed_timeout():
    pool = _make_pool()
    try:
        retry = RetryPolicy(timeout_s=0.3, max_retries=2, backoff_s=0.05)
        transport = ProcessTransport(pool.members[0], retry=retry)
        with pytest.raises(TransportTimeoutError, match="ping"):
            transport.request(("ping", 1, 5.0))
    finally:
        pool.close(join_timeout_s=0.5)


def test_dead_member_raises_worker_crash_error():
    pool = _make_pool()
    try:
        member = pool.members[0]
        member.proc.terminate()
        member.proc.join(timeout=5.0)
        transport = ProcessTransport(
            member, retry=RetryPolicy(timeout_s=2.0, backoff_s=0.05)
        )
        with pytest.raises(WorkerCrashError):
            transport.request(("ping", 1, 0.0))
    finally:
        pool.close(join_timeout_s=0.5)


# ----------------------------------------------------------------------
# straggler heartbeat
# ----------------------------------------------------------------------
def test_straggler_detector_needs_two_observations():
    detector = StragglerDetector()
    assert detector.flag({}) == []
    assert detector.flag({0: 123.0}) == []


def test_straggler_detector_uniform_batch_is_clean():
    detector = StragglerDetector(quorum_fraction=0.5,
                                 deadline_multiplier=1.5)
    assert detector.flag({i: 1.0 for i in range(4)}) == []


def test_straggler_detector_flags_outlier():
    detector = StragglerDetector(quorum_fraction=0.5,
                                 deadline_multiplier=1.5)
    flagged = detector.flag({0: 1.0, 1: 1.0, 2: 1.0, 3: 10.0})
    assert flagged == [3]
