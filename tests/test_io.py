"""Checkpoint and history persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.history import RoundRecord, TrainingHistory
from repro.io import (
    atomic_write_bytes,
    atomic_write_text,
    load_history,
    load_state_dict,
    save_history,
    save_state_dict,
)
from repro.models import build_cnn


def test_state_dict_roundtrip(tmp_path, rng):
    model = build_cnn(rng=rng)
    state = model.state_dict()
    path = tmp_path / "checkpoint.npz"
    save_state_dict(state, path)
    loaded = load_state_dict(path)
    assert set(loaded) == set(state)
    for key in state:
        assert np.allclose(loaded[key], state[key]), key


def test_loaded_checkpoint_restores_model(tmp_path, rng):
    model = build_cnn(rng=rng)
    path = tmp_path / "checkpoint.npz"
    save_state_dict(model.state_dict(), path)
    other = build_cnn(rng=np.random.default_rng(99))
    other.load_state_dict(load_state_dict(path))
    x = rng.normal(size=(2, 1, 28, 28)).astype(np.float32)
    model.eval()
    other.eval()
    assert np.allclose(model.forward(x), other.forward(x), atol=1e-6)


def test_atomic_write_bytes_creates_and_overwrites(tmp_path):
    path = tmp_path / "blob.bin"
    atomic_write_bytes(path, b"first")
    assert path.read_bytes() == b"first"
    atomic_write_bytes(path, b"second")
    assert path.read_bytes() == b"second"
    # no temp-file droppings on the success path
    assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]


def test_atomic_write_text_utf8(tmp_path):
    path = tmp_path / "note.txt"
    atomic_write_text(path, "résumé")
    assert path.read_text(encoding="utf-8") == "résumé"


def test_atomic_write_cleans_up_on_failure(tmp_path):
    path = tmp_path / "blob.bin"
    path.write_bytes(b"original")

    import unittest.mock as mock

    with mock.patch("os.replace", side_effect=OSError("disk gone")):
        with pytest.raises(OSError, match="disk gone"):
            atomic_write_bytes(path, b"new content")
    assert path.read_bytes() == b"original"
    assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]


def test_atomic_write_survives_sigkill_mid_write(tmp_path):
    """Regression (torn-file fix): a writer SIGKILLed at an arbitrary
    point must never tear the target -- the reader sees the complete
    old content or the complete new content, nothing in between."""
    import signal
    import subprocess
    import sys
    import time
    from pathlib import Path

    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    target = tmp_path / "state.bin"
    old = b"O" * 65536
    new = b"N" * 65536
    target.write_bytes(old)
    script = (
        "import sys\n"
        f"sys.path.insert(0, {src!r})\n"
        "from repro.io import atomic_write_bytes\n"
        "print('ready', flush=True)\n"
        "while True:\n"
        f"    atomic_write_bytes({str(target)!r}, b'N' * 65536)\n"
    )
    proc = subprocess.Popen([sys.executable, "-c", script],
                            stdout=subprocess.PIPE)
    try:
        assert proc.stdout.readline().strip() == b"ready"
        time.sleep(0.05)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        proc.stdout.close()
    content = target.read_bytes()
    assert content in (old, new), \
        f"target torn: {len(content)} bytes, head {content[:8]!r}"


def test_save_state_dict_appends_npz_suffix(tmp_path, rng):
    """The atomic rewrite keeps np.savez's suffix behaviour."""
    model = build_cnn(rng=rng)
    save_state_dict(model.state_dict(), tmp_path / "weights")
    assert (tmp_path / "weights.npz").exists()
    loaded = load_state_dict(tmp_path / "weights.npz")
    assert set(loaded) == set(model.state_dict())


def test_history_roundtrip(tmp_path):
    history = TrainingHistory(strategy="fedmp", model_name="cnn/mnist",
                              higher_is_better=True)
    history.append(RoundRecord(
        round_index=0, sim_time_s=10.0, round_time_s=10.0, metric=0.5,
        eval_loss=1.2, train_loss=1.5, ratios={0: 0.3, 1: 0.0},
        completion_times={0: 8.0, 1: 10.0}, discarded=[2],
        overhead_s=0.01,
    ))
    history.append(RoundRecord(
        round_index=1, sim_time_s=20.0, round_time_s=10.0, metric=None,
        eval_loss=None, train_loss=1.1, ratios={}, completion_times={},
    ))
    path = tmp_path / "history.json"
    save_history(history, path)
    loaded = load_history(path)

    assert loaded.strategy == "fedmp"
    assert loaded.higher_is_better
    assert len(loaded.rounds) == 2
    first = loaded.rounds[0]
    assert first.metric == 0.5
    assert first.ratios == {0: 0.3, 1: 0.0}
    assert first.completion_times == {0: 8.0, 1: 10.0}
    assert first.discarded == [2]
    assert loaded.rounds[1].metric is None
    # reductions still work on the loaded copy
    assert loaded.time_to_target(0.5) == 10.0


def test_history_roundtrip_engine_fields(tmp_path):
    """The engine-era fields (carried_over, hook extras) roundtrip."""
    history = TrainingHistory(strategy="fedmp", model_name="cnn/mnist")
    history.append(RoundRecord(
        round_index=0, sim_time_s=6.0, round_time_s=6.0, metric=0.4,
        eval_loss=1.0, train_loss=1.5, ratios={0: 0.2},
        completion_times={0: 4.0}, carried_over=[1, 2],
        extras={"wall_time_s": 0.25, "download_params": 1000.0,
                "upload_params": 900.0},
    ))
    path = tmp_path / "history.json"
    save_history(history, path)
    loaded = load_history(path)
    record = loaded.rounds[0]
    assert record.carried_over == [1, 2]
    assert record.extras == {"wall_time_s": 0.25,
                             "download_params": 1000.0,
                             "upload_params": 900.0}


def test_history_load_tolerates_pre_engine_payload(tmp_path):
    """Histories written before the round engine lack the new keys."""
    import json

    path = tmp_path / "old.json"
    payload = {
        "strategy": "synfl", "model_name": "cnn/mnist",
        "higher_is_better": True,
        "rounds": [{
            "round_index": 0, "sim_time_s": 5.0, "round_time_s": 5.0,
            "metric": 0.3, "eval_loss": 2.0, "train_loss": 2.5,
            "ratios": {"0": 0.0}, "completion_times": {"0": 5.0},
            "discarded": [], "overhead_s": 0.0,
        }],
    }
    path.write_text(json.dumps(payload))
    loaded = load_history(path)
    assert loaded.rounds[0].carried_over == []
    assert loaded.rounds[0].extras == {}


def test_live_history_roundtrip_preserves_every_field(tmp_path):
    """End-to-end: a history produced by the engine with the built-in
    hooks attached survives JSON export -> import field-for-field."""
    from dataclasses import fields

    from repro.data.synthetic import make_synthetic_mnist
    from repro.fl.config import FLConfig
    from repro.fl.hooks import CommVolumeHook, TimingHook
    from repro.fl.runner import run_federated_training
    from repro.fl.tasks import ClassificationTask
    from repro.simulation.cluster import make_scenario_devices

    dataset = make_synthetic_mnist(train_per_class=10, test_per_class=3,
                                   rng=np.random.default_rng(0))
    task = ClassificationTask(dataset, "cnn")
    devices = make_scenario_devices("medium", np.random.default_rng(7))
    config = FLConfig(strategy="synfl", max_rounds=2, local_iterations=1,
                      batch_size=8, seed=5, semi_sync_deadline_s=6.0)
    history = run_federated_training(
        task, devices, config, hooks=[TimingHook(), CommVolumeHook()]
    )

    path = tmp_path / "live.json"
    save_history(history, path)
    loaded = load_history(path)

    assert len(loaded.rounds) == len(history.rounds)
    for original, restored in zip(history.rounds, loaded.rounds):
        for field in fields(RoundRecord):
            assert getattr(restored, field.name) \
                == getattr(original, field.name), field.name


def test_history_roundtrip_nested_extras(tmp_path):
    """Telemetry-era extras nest dicts/lists and carry numpy scalars."""
    history = TrainingHistory(strategy="fedmp", model_name="cnn/mnist")
    history.append(RoundRecord(
        round_index=0, sim_time_s=6.0, round_time_s=6.0, metric=0.4,
        eval_loss=1.0, train_loss=1.5, ratios={0: 0.2},
        completion_times={0: 4.0},
        extras={
            "wall_time_s": np.float64(0.25),
            "eucb": {
                "agents": {
                    "0": {
                        "rounds_played": np.int64(3),
                        "arms": [
                            {"low": 0.0, "high": 0.4,
                             "pulls": 2, "mean": 0.8},
                            {"low": 0.4, "high": 0.8,
                             "pulls": 1, "mean": None},
                        ],
                    },
                },
            },
        },
    ))
    path = tmp_path / "history.json"
    save_history(history, path)
    loaded = load_history(path)
    extras = loaded.rounds[0].extras
    assert extras["wall_time_s"] == 0.25
    agent = extras["eucb"]["agents"]["0"]
    assert agent["rounds_played"] == 3
    assert agent["arms"][1]["mean"] is None
    assert agent["arms"][0] == {"low": 0.0, "high": 0.4,
                                "pulls": 2, "mean": 0.8}


def test_live_telemetry_history_roundtrips(tmp_path):
    """A history carrying real E-UCB snapshots survives save/load."""
    from repro.data.synthetic import make_synthetic_mnist
    from repro.fl.config import FLConfig
    from repro.fl.runner import run_federated_training
    from repro.fl.tasks import ClassificationTask
    from repro.simulation.cluster import make_scenario_devices
    from repro.telemetry import Telemetry, TelemetryHook

    dataset = make_synthetic_mnist(train_per_class=10, test_per_class=3,
                                   rng=np.random.default_rng(0))
    task = ClassificationTask(dataset, "cnn")
    devices = make_scenario_devices("medium", np.random.default_rng(7))
    config = FLConfig(strategy="fedmp", max_rounds=2, local_iterations=1,
                      batch_size=8, seed=5,
                      strategy_kwargs={"warmup_rounds": 1})
    telemetry = Telemetry()
    history = run_federated_training(task, devices, config,
                                     hooks=[TelemetryHook(telemetry)],
                                     telemetry=telemetry)
    assert all("eucb" in r.extras for r in history.rounds)

    path = tmp_path / "live.json"
    save_history(history, path)
    loaded = load_history(path)
    for original, restored in zip(history.rounds, loaded.rounds):
        assert restored.extras["eucb"]["agents"].keys() \
            == original.extras["eucb"]["agents"].keys()
        assert restored.extras["eucb"] == original.extras["eucb"]
