"""Checkpoint and history persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.history import RoundRecord, TrainingHistory
from repro.io import load_history, load_state_dict, save_history, save_state_dict
from repro.models import build_cnn


def test_state_dict_roundtrip(tmp_path, rng):
    model = build_cnn(rng=rng)
    state = model.state_dict()
    path = tmp_path / "checkpoint.npz"
    save_state_dict(state, path)
    loaded = load_state_dict(path)
    assert set(loaded) == set(state)
    for key in state:
        assert np.allclose(loaded[key], state[key]), key


def test_loaded_checkpoint_restores_model(tmp_path, rng):
    model = build_cnn(rng=rng)
    path = tmp_path / "checkpoint.npz"
    save_state_dict(model.state_dict(), path)
    other = build_cnn(rng=np.random.default_rng(99))
    other.load_state_dict(load_state_dict(path))
    x = rng.normal(size=(2, 1, 28, 28)).astype(np.float32)
    model.eval()
    other.eval()
    assert np.allclose(model.forward(x), other.forward(x), atol=1e-6)


def test_history_roundtrip(tmp_path):
    history = TrainingHistory(strategy="fedmp", model_name="cnn/mnist",
                              higher_is_better=True)
    history.append(RoundRecord(
        round_index=0, sim_time_s=10.0, round_time_s=10.0, metric=0.5,
        eval_loss=1.2, train_loss=1.5, ratios={0: 0.3, 1: 0.0},
        completion_times={0: 8.0, 1: 10.0}, discarded=[2],
        overhead_s=0.01,
    ))
    history.append(RoundRecord(
        round_index=1, sim_time_s=20.0, round_time_s=10.0, metric=None,
        eval_loss=None, train_loss=1.1, ratios={}, completion_times={},
    ))
    path = tmp_path / "history.json"
    save_history(history, path)
    loaded = load_history(path)

    assert loaded.strategy == "fedmp"
    assert loaded.higher_is_better
    assert len(loaded.rounds) == 2
    first = loaded.rounds[0]
    assert first.metric == 0.5
    assert first.ratios == {0: 0.3, 1: 0.0}
    assert first.completion_times == {0: 8.0, 1: 10.0}
    assert first.discarded == [2]
    assert loaded.rounds[1].metric is None
    # reductions still work on the loaded copy
    assert loaded.time_to_target(0.5) == 10.0
