"""Synthetic image datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    make_prototype_dataset,
    make_synthetic_cifar10,
    make_synthetic_emnist,
    make_synthetic_mnist,
    make_synthetic_tiny_imagenet,
)


@pytest.mark.parametrize(
    "factory,shape,classes",
    [
        (make_synthetic_mnist, (1, 28, 28), 10),
        (make_synthetic_cifar10, (3, 32, 32), 10),
        (make_synthetic_emnist, (1, 28, 28), 62),
        (make_synthetic_tiny_imagenet, (3, 64, 64), 200),
    ],
)
def test_shapes_and_class_counts(rng, factory, shape, classes):
    dataset = factory(train_per_class=3, test_per_class=1, rng=rng)
    assert dataset.input_shape == shape
    assert dataset.num_classes == classes
    assert dataset.train_x.shape == (3 * classes,) + shape
    assert dataset.test_x.shape == (1 * classes,) + shape
    assert set(np.unique(dataset.train_y)) == set(range(classes))


def test_reproducible_from_seed():
    a = make_synthetic_mnist(train_per_class=2, test_per_class=1,
                             rng=np.random.default_rng(9))
    b = make_synthetic_mnist(train_per_class=2, test_per_class=1,
                             rng=np.random.default_rng(9))
    assert np.allclose(a.train_x, b.train_x)
    assert np.array_equal(a.train_y, b.train_y)


def test_classes_are_separable_at_low_noise(rng):
    """Nearest-prototype classification must beat chance by a wide
    margin: the datasets have to be learnable."""
    dataset = make_prototype_dataset(
        "toy", 5, (1, 16, 16), train_per_class=20, test_per_class=10,
        noise=0.3, rng=rng,
    )
    # class means from train as prototypes
    prototypes = np.stack([
        dataset.train_x[dataset.train_y == c].mean(axis=0).reshape(-1)
        for c in range(5)
    ])
    flat = dataset.test_x.reshape(dataset.test_x.shape[0], -1)
    distances = ((flat[:, None, :] - prototypes[None]) ** 2).sum(axis=2)
    predictions = distances.argmin(axis=1)
    accuracy = (predictions == dataset.test_y).mean()
    assert accuracy > 0.8


def test_samples_are_shuffled(rng):
    dataset = make_synthetic_mnist(train_per_class=10, test_per_class=2,
                                   rng=rng)
    # labels should not be sorted by class
    assert not np.array_equal(dataset.train_y, np.sort(dataset.train_y))


def test_mismatched_lengths_rejected(rng):
    from repro.data.synthetic import ImageDataset

    with pytest.raises(ValueError):
        ImageDataset("bad", np.zeros((3, 1, 2, 2)), np.zeros(2),
                     np.zeros((1, 1, 2, 2)), np.zeros(1), 2)
