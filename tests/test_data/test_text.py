"""Synthetic PTB corpus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.text import make_synthetic_ptb


@pytest.fixture(scope="module")
def corpus():
    return make_synthetic_ptb(vocab_size=100, train_tokens=5000,
                              valid_tokens=600, test_tokens=600,
                              rng=np.random.default_rng(4))


def test_token_ranges(corpus):
    for stream in (corpus.train_tokens, corpus.valid_tokens,
                   corpus.test_tokens):
        assert stream.min() >= 0
        assert stream.max() < 100


def test_batchify_shapes(corpus):
    inputs, targets = corpus.batchify("train", seq_len=10, batch_size=4)
    assert inputs.shape == targets.shape
    assert inputs.shape[1:] == (10, 4)


def test_targets_are_shifted_inputs(corpus):
    inputs, targets = corpus.batchify("train", seq_len=5, batch_size=2)
    flat_in = inputs.transpose(0, 2, 1).reshape(-1)
    flat_tg = targets.transpose(0, 2, 1).reshape(-1)
    assert np.array_equal(flat_tg[:-1], flat_in[1:])


def test_batchify_too_short_raises(corpus):
    with pytest.raises(ValueError):
        corpus.batchify("valid", seq_len=1000, batch_size=64)


def test_corpus_has_markov_structure(corpus):
    """Bigram entropy must be far below unigram entropy: the LSTM has
    something to learn."""
    tokens = corpus.train_tokens
    vocab = 100
    unigram = np.bincount(tokens, minlength=vocab) / tokens.size
    unigram_entropy = -np.sum(
        unigram[unigram > 0] * np.log(unigram[unigram > 0])
    )
    pair_counts = {}
    for a, b in zip(tokens[:-1], tokens[1:]):
        pair_counts[(a, b)] = pair_counts.get((a, b), 0) + 1
    conditional = 0.0
    total = tokens.size - 1
    from collections import defaultdict

    by_first = defaultdict(list)
    for (a, b), count in pair_counts.items():
        by_first[a].append(count)
    for a, counts in by_first.items():
        counts = np.asarray(counts, dtype=float)
        probs = counts / counts.sum()
        weight = counts.sum() / total
        conditional += weight * -np.sum(probs * np.log(probs))
    assert conditional < 0.7 * unigram_entropy


def test_reproducible():
    a = make_synthetic_ptb(vocab_size=50, train_tokens=1000,
                           rng=np.random.default_rng(2))
    b = make_synthetic_ptb(vocab_size=50, train_tokens=1000,
                           rng=np.random.default_rng(2))
    assert np.array_equal(a.train_tokens, b.train_tokens)
