"""Mini-batch iterator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import BatchIterator


def test_batch_shapes(rng):
    x = rng.normal(size=(20, 3))
    y = rng.integers(0, 2, size=20)
    iterator = BatchIterator(x, y, batch_size=6, rng=rng)
    xb, yb = iterator.next_batch()
    assert xb.shape == (6, 3)
    assert yb.shape == (6,)


def test_epoch_reshuffle_covers_all_samples(rng):
    x = np.arange(10).reshape(10, 1).astype(float)
    y = np.arange(10)
    iterator = BatchIterator(x, y, batch_size=5, rng=rng)
    seen = set()
    for _ in range(2):  # one epoch
        _, yb = iterator.next_batch()
        seen.update(yb.tolist())
    assert seen == set(range(10))


def test_batch_size_clamped_to_shard(rng):
    x = rng.normal(size=(3, 2))
    y = np.zeros(3, dtype=int)
    iterator = BatchIterator(x, y, batch_size=100, rng=rng)
    xb, _ = iterator.next_batch()
    assert xb.shape[0] == 3


def test_empty_shard_rejected(rng):
    with pytest.raises(ValueError):
        BatchIterator(np.zeros((0, 2)), np.zeros(0), 4, rng=rng)


def test_length_mismatch_rejected(rng):
    with pytest.raises(ValueError):
        BatchIterator(np.zeros((3, 2)), np.zeros(2), 2, rng=rng)


def test_batches_generator_counts(rng):
    x = rng.normal(size=(8, 2))
    y = np.zeros(8, dtype=int)
    iterator = BatchIterator(x, y, batch_size=4, rng=rng)
    assert len(list(iterator.batches(5))) == 5


def test_deterministic_given_seed():
    x = np.arange(12).reshape(12, 1).astype(float)
    y = np.arange(12)
    a = BatchIterator(x, y, 4, rng=np.random.default_rng(1))
    b = BatchIterator(x, y, 4, rng=np.random.default_rng(1))
    for _ in range(5):
        xa, _ = a.next_batch()
        xb, _ = b.next_batch()
        assert np.array_equal(xa, xb)
