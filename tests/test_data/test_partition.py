"""IID and non-IID data partitioning."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.data.partition import (
    iid_partition,
    label_skew_partition,
    missing_classes_partition,
    partition_dataset,
    partition_sizes,
)
from repro.data.synthetic import make_synthetic_emnist, make_synthetic_mnist


def _labels(samples_per_class=100, classes=10, rng=None):
    labels = np.repeat(np.arange(classes), samples_per_class)
    return (rng or np.random.default_rng(0)).permutation(labels)


def test_iid_covers_all_indices(rng):
    labels = _labels(rng=rng)
    parts = iid_partition(labels, 5, rng)
    joined = np.concatenate(parts)
    assert np.array_equal(np.sort(joined), np.arange(labels.size))


def test_iid_label_distribution_roughly_uniform(rng):
    labels = _labels(rng=rng)
    parts = iid_partition(labels, 5, rng)
    for part in parts:
        counts = Counter(labels[part])
        assert max(counts.values()) - min(counts.values()) <= 20


def test_iid_rejects_zero_workers(rng):
    with pytest.raises(ValueError):
        iid_partition(_labels(rng=rng), 0, rng)


def test_label_skew_dominant_fraction(rng):
    # 10 workers over 10 classes: each class's supply covers one
    # worker's 80% dominant demand (the paper's default composition)
    labels = _labels(rng=rng)
    parts = label_skew_partition(labels, 10, 80.0, rng)
    for part in parts:
        counts = Counter(labels[part])
        dominant_share = counts.most_common(1)[0][1] / part.size
        assert dominant_share >= 0.7


def test_label_skew_zero_is_iid(rng):
    labels = _labels(rng=rng)
    parts = label_skew_partition(labels, 5, 0.0, rng)
    assert sum(p.size for p in parts) == labels.size


def test_label_skew_rejects_out_of_range(rng):
    with pytest.raises(ValueError):
        label_skew_partition(_labels(rng=rng), 5, 150.0, rng)


def test_label_skew_no_index_duplication(rng):
    labels = _labels(rng=rng)
    parts = label_skew_partition(labels, 5, 50.0, rng)
    joined = np.concatenate(parts)
    assert len(np.unique(joined)) == joined.size


def test_missing_classes_each_worker_lacks_y(rng):
    labels = _labels(samples_per_class=30, classes=10, rng=rng)
    parts = missing_classes_partition(labels, 4, 3, rng)
    for part in parts:
        present = set(np.unique(labels[part]))
        assert len(present) <= 7


def test_missing_classes_zero_is_iid(rng):
    labels = _labels(rng=rng)
    parts = missing_classes_partition(labels, 4, 0, rng)
    assert sum(p.size for p in parts) == labels.size


def test_missing_classes_bounds(rng):
    labels = _labels(rng=rng)
    with pytest.raises(ValueError):
        missing_classes_partition(labels, 4, 10, rng)


def test_partition_dataset_dispatch(rng):
    # enough per-class supply that each worker's dominant demand is met
    mnist = make_synthetic_mnist(train_per_class=40, test_per_class=2,
                                 rng=rng)
    parts = partition_dataset(mnist, 10, rng, non_iid_level=80)
    counts = Counter(mnist.train_y[parts[0]])
    assert counts.most_common(1)[0][1] / parts[0].size >= 0.6

    emnist = make_synthetic_emnist(train_per_class=4, test_per_class=1,
                                   num_classes=10, rng=rng)
    parts = partition_dataset(emnist, 4, rng, non_iid_level=3)
    present = set(np.unique(emnist.train_y[parts[0]]))
    assert len(present) <= 7


def test_partition_sizes(rng):
    labels = _labels(rng=rng)
    parts = iid_partition(labels, 5, rng)
    assert partition_sizes(parts) == [200] * 5
