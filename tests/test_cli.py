"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_task():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--task", "transformer"])


def test_parser_rejects_unknown_strategy():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--strategy", "magic"])


def test_devices_command(capsys):
    assert main(["devices", "--scenario", "high"]) == 0
    out = capsys.readouterr().out
    assert "10 devices" in out
    assert "cluster C" in out


def test_run_command_writes_history(tmp_path, capsys):
    history_path = tmp_path / "history.json"
    code = main([
        "run", "--task", "cnn", "--strategy", "synfl",
        "--rounds", "2", "--seed", "1",
        "--history", str(history_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final metric" in out
    payload = json.loads(history_path.read_text())
    assert payload["strategy"] == "synfl"
    assert len(payload["rounds"]) == 2


def test_compare_command(capsys):
    code = main([
        "compare", "--task", "cnn", "--rounds", "2",
        "--strategies", "synfl", "fedmp", "--target", "2.0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Syn-FL" in out
    assert "FedMP" in out


def test_run_process_executor_matches_serial_history(tmp_path, capsys):
    """`--executor process` must produce the same run as serial (the
    CLI-level view of the runtime's 0-ULP parity guarantee)."""
    serial_path = tmp_path / "serial.json"
    process_path = tmp_path / "process.json"
    base = ["run", "--task", "cnn", "--strategy", "synfl",
            "--rounds", "1", "--seed", "3"]
    assert main(base + ["--history", str(serial_path)]) == 0
    assert main(base + ["--executor", "process", "--num-procs", "2",
                        "--history", str(process_path)]) == 0
    capsys.readouterr()
    serial = json.loads(serial_path.read_text())
    process = json.loads(process_path.read_text())
    for entry in serial["rounds"] + process["rounds"]:
        entry["overhead_s"] = 0.0  # host time, not behaviour
        (entry.get("extras") or {}).pop("wall_time_s", None)
    assert serial == process


def test_run_nan_policy_and_fast_path_flags_reach_config(tmp_path, capsys):
    history_path = tmp_path / "history.json"
    code = main([
        "run", "--task", "cnn", "--strategy", "synfl",
        "--rounds", "1", "--seed", "1", "--nan-policy", "skip",
        "--no-fast-path", "--history", str(history_path),
    ])
    assert code == 0
    capsys.readouterr()
    assert json.loads(history_path.read_text())["rounds"]


def test_run_rejects_profiler_with_process_executor(capsys):
    code = main([
        "run", "--task", "cnn", "--strategy", "synfl", "--rounds", "1",
        "--executor", "process", "--profile-worker", "0",
    ])
    assert code == 2
    assert "--profile-worker" in capsys.readouterr().err


def test_verify_parser_accepts_executor_flags():
    parser = build_parser()
    args = parser.parse_args(["verify", "--executor", "process",
                              "--num-procs", "2"])
    assert args.executor == "process"
    assert args.num_procs == 2
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--executor", "threads"])


def test_run_exporters_and_manifest(tmp_path, capsys):
    """One run feeds every observability exit: trace JSONL that the
    analytics can read, an OpenMetrics file that round-trips through
    the parser, and a manifest tying the artifacts together."""
    from repro.telemetry import build_tree, load_trace, parse_openmetrics

    trace = tmp_path / "trace.jsonl"
    om = tmp_path / "metrics.om"
    manifest = tmp_path / "manifest.json"
    code = main([
        "run", "--task", "cnn", "--strategy", "synfl",
        "--rounds", "2", "--seed", "1",
        "--trace-out", str(trace),
        "--metrics-export", str(om),
        "--manifest", str(manifest),
    ])
    assert code == 0
    capsys.readouterr()

    roots = build_tree(load_trace(trace))
    assert [n.name for n in roots] == ["round", "round"]

    families = parse_openmetrics(om.read_text())
    assert families["aggregations"].sample_value("aggregations_total") == 2
    assert "round_time_s" in families

    payload = json.loads(manifest.read_text())
    assert payload["kind"] == "repro-run-manifest"
    assert payload["config"]["task"] == "cnn"
    assert payload["artifacts"]["trace"] == str(trace)
    assert payload["artifacts"]["metrics_export"] == str(om)
    assert "metrics" not in payload["artifacts"]  # --metrics-out unset
    assert payload["result"]["rounds"] == 2


def test_run_metrics_port_serves_scrapes(tmp_path, capsys):
    import re
    import urllib.request

    from repro.telemetry import parse_openmetrics

    code = main([
        "run", "--task", "cnn", "--strategy", "synfl",
        "--rounds", "1", "--seed", "1", "--metrics-port", "0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    match = re.search(r"serving metrics at (http://\S+)", out)
    assert match, f"no scrape URL announced in: {out!r}"
    # the server is closed once the run finishes
    with pytest.raises(OSError):
        urllib.request.urlopen(match.group(1), timeout=1)


def test_trace_subcommands(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["run", "--task", "cnn", "--strategy", "synfl",
                 "--rounds", "2", "--seed", "1",
                 "--trace-out", str(trace)]) == 0
    capsys.readouterr()

    assert main(["trace", "summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "Phase breakdown" in out
    assert "critical path" in out
    assert "round" in out

    assert main(["trace", "summary", str(trace), "--round", "1"]) == 0
    assert "round 1" in capsys.readouterr().out

    assert main(["trace", "diff", str(trace), str(trace)]) == 0
    out = capsys.readouterr().out
    assert "1.00x" in out

    folded = tmp_path / "folded.txt"
    assert main(["trace", "folded", str(trace),
                 "--out", str(folded)]) == 0
    capsys.readouterr()
    lines = folded.read_text().strip().splitlines()
    assert lines
    for line in lines:
        stack, count = line.rsplit(" ", 1)
        assert stack.split(";")[0] == "round"
        assert int(count) > 0


def test_exporters_keep_history_bitwise_pinned(tmp_path, capsys):
    """Turning every exporter on (trace, OpenMetrics, scrape endpoint,
    manifest) must not perturb training: the history is identical to a
    bare run's, modulo host-time fields."""
    bare_path = tmp_path / "bare.json"
    instrumented_path = tmp_path / "instrumented.json"
    base = ["run", "--task", "cnn", "--strategy", "fedmp",
            "--rounds", "2", "--seed", "11"]
    assert main(base + ["--history", str(bare_path)]) == 0
    assert main(base + [
        "--history", str(instrumented_path),
        "--trace-out", str(tmp_path / "t.jsonl"),
        "--metrics-export", str(tmp_path / "m.om"),
        "--metrics-port", "0",
        "--manifest", str(tmp_path / "manifest.json"),
    ]) == 0
    capsys.readouterr()
    bare = json.loads(bare_path.read_text())
    instrumented = json.loads(instrumented_path.read_text())
    for entry in bare["rounds"] + instrumented["rounds"]:
        entry["overhead_s"] = 0.0  # host time, not behaviour
        extras = entry.get("extras") or {}
        extras.pop("wall_time_s", None)  # host time
        extras.pop("eucb", None)  # observability payload, not training
    assert bare == instrumented
