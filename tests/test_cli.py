"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_task():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--task", "transformer"])


def test_parser_rejects_unknown_strategy():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--strategy", "magic"])


def test_devices_command(capsys):
    assert main(["devices", "--scenario", "high"]) == 0
    out = capsys.readouterr().out
    assert "10 devices" in out
    assert "cluster C" in out


def test_run_command_writes_history(tmp_path, capsys):
    history_path = tmp_path / "history.json"
    code = main([
        "run", "--task", "cnn", "--strategy", "synfl",
        "--rounds", "2", "--seed", "1",
        "--history", str(history_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final metric" in out
    payload = json.loads(history_path.read_text())
    assert payload["strategy"] == "synfl"
    assert len(payload["rounds"]) == 2


def test_compare_command(capsys):
    code = main([
        "compare", "--task", "cnn", "--rounds", "2",
        "--strategies", "synfl", "fedmp", "--target", "2.0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Syn-FL" in out
    assert "FedMP" in out


def test_run_process_executor_matches_serial_history(tmp_path, capsys):
    """`--executor process` must produce the same run as serial (the
    CLI-level view of the runtime's 0-ULP parity guarantee)."""
    serial_path = tmp_path / "serial.json"
    process_path = tmp_path / "process.json"
    base = ["run", "--task", "cnn", "--strategy", "synfl",
            "--rounds", "1", "--seed", "3"]
    assert main(base + ["--history", str(serial_path)]) == 0
    assert main(base + ["--executor", "process", "--num-procs", "2",
                        "--history", str(process_path)]) == 0
    capsys.readouterr()
    serial = json.loads(serial_path.read_text())
    process = json.loads(process_path.read_text())
    for entry in serial["rounds"] + process["rounds"]:
        entry["overhead_s"] = 0.0  # host time, not behaviour
        (entry.get("extras") or {}).pop("wall_time_s", None)
    assert serial == process


def test_run_nan_policy_and_fast_path_flags_reach_config(tmp_path, capsys):
    history_path = tmp_path / "history.json"
    code = main([
        "run", "--task", "cnn", "--strategy", "synfl",
        "--rounds", "1", "--seed", "1", "--nan-policy", "skip",
        "--no-fast-path", "--history", str(history_path),
    ])
    assert code == 0
    capsys.readouterr()
    assert json.loads(history_path.read_text())["rounds"]


def test_run_rejects_profiler_with_process_executor(capsys):
    code = main([
        "run", "--task", "cnn", "--strategy", "synfl", "--rounds", "1",
        "--executor", "process", "--profile-worker", "0",
    ])
    assert code == 2
    assert "--profile-worker" in capsys.readouterr().err


def test_verify_parser_accepts_executor_flags():
    parser = build_parser()
    args = parser.parse_args(["verify", "--executor", "process",
                              "--num-procs", "2"])
    assert args.executor == "process"
    assert args.num_procs == 2
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--executor", "threads"])
