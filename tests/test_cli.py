"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_task():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--task", "transformer"])


def test_parser_rejects_unknown_strategy():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--strategy", "magic"])


def test_devices_command(capsys):
    assert main(["devices", "--scenario", "high"]) == 0
    out = capsys.readouterr().out
    assert "10 devices" in out
    assert "cluster C" in out


def test_run_command_writes_history(tmp_path, capsys):
    history_path = tmp_path / "history.json"
    code = main([
        "run", "--task", "cnn", "--strategy", "synfl",
        "--rounds", "2", "--seed", "1",
        "--history", str(history_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "final metric" in out
    payload = json.loads(history_path.read_text())
    assert payload["strategy"] == "synfl"
    assert len(payload["rounds"]) == 2


def test_compare_command(capsys):
    code = main([
        "compare", "--task", "cnn", "--rounds", "2",
        "--strategies", "synfl", "fedmp", "--target", "2.0",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Syn-FL" in out
    assert "FedMP" in out
