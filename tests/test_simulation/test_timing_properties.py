"""Hypothesis property tests for the cost model."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.device import JETSON_TX2_MODES, DeviceProfile
from repro.simulation.network import bandwidth_for_distance
from repro.simulation.timing import TimingModel


@settings(max_examples=40, deadline=None)
@given(
    mode=st.integers(0, 3),
    bandwidth=st.floats(min_value=1e5, max_value=1e8),
    flops=st.floats(min_value=1e3, max_value=1e10),
    params=st.integers(min_value=1, max_value=10 ** 8),
    batch=st.integers(min_value=1, max_value=256),
    tau=st.integers(min_value=1, max_value=50),
)
def test_costs_positive_and_additive(mode, bandwidth, flops, params, batch,
                                     tau):
    device = DeviceProfile(0, JETSON_TX2_MODES[mode], bandwidth)
    model = TimingModel(device, jitter_sigma=0.0)
    costs = model.round_costs(flops, params, params, batch, tau)
    assert costs.computation_s > 0
    assert costs.download_s > 0
    assert costs.upload_s > 0
    assert costs.total_s == costs.computation_s + costs.communication_s


@settings(max_examples=40, deadline=None)
@given(
    d1=st.floats(min_value=1.0, max_value=500.0),
    d2=st.floats(min_value=1.0, max_value=500.0),
)
def test_bandwidth_monotone_in_distance(d1, d2):
    near, far = min(d1, d2), max(d1, d2)
    assert bandwidth_for_distance(near) >= bandwidth_for_distance(far)


@settings(max_examples=30, deadline=None)
@given(
    flops1=st.floats(min_value=1e3, max_value=1e9),
    scale=st.floats(min_value=1.001, max_value=100.0),
)
def test_computation_monotone_in_flops(flops1, scale):
    device = DeviceProfile(0, JETSON_TX2_MODES[0], 1e7)
    model = TimingModel(device, jitter_sigma=0.0)
    small = model.computation_time(flops1, 8, 2)
    large = model.computation_time(flops1 * scale, 8, 2)
    assert large > small
