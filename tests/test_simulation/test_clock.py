"""Simulated clock."""

from __future__ import annotations

import pytest

from repro.simulation.clock import SimulationClock


def test_advance_accumulates():
    clock = SimulationClock()
    clock.advance(5.0)
    clock.advance(2.5)
    assert clock.now == pytest.approx(7.5)


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        SimulationClock().advance(-1.0)


def test_advance_to_absolute():
    clock = SimulationClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0
    with pytest.raises(ValueError):
        clock.advance_to(5.0)


def test_round_marks():
    clock = SimulationClock()
    clock.advance(1.0)
    clock.mark_round()
    clock.advance(2.0)
    clock.mark_round()
    assert clock.round_marks == [1.0, 3.0]


def test_last_mark():
    clock = SimulationClock()
    assert clock.last_mark == 0.0
    clock.advance(4.0)
    clock.mark_round()
    clock.advance(2.0)
    assert clock.last_mark == 4.0
    clock.mark_round()
    assert clock.last_mark == 6.0


def test_reset():
    clock = SimulationClock()
    clock.advance(3.0)
    clock.mark_round()
    clock.reset()
    assert clock.now == 0.0
    assert clock.round_marks == []
