"""Deadline-based fault tolerance (Section V-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.faults import DeadlinePolicy, simulate_membership_churn


def test_straggler_discarded():
    policy = DeadlinePolicy(quorum_fraction=0.85, deadline_multiplier=1.5)
    times = {i: 10.0 + i for i in range(9)}
    times[9] = 100.0
    outcome = policy.apply(times)
    assert outcome.discarded == [9]
    assert 9 not in outcome.accepted
    assert outcome.round_time_s == pytest.approx(18.0)


def test_all_accepted_when_homogeneous():
    policy = DeadlinePolicy()
    times = {i: 10.0 for i in range(10)}
    outcome = policy.apply(times)
    assert outcome.discarded == []
    assert len(outcome.accepted) == 10


def test_deadline_is_multiple_of_quorum_time():
    policy = DeadlinePolicy(quorum_fraction=0.5, deadline_multiplier=2.0)
    times = {0: 1.0, 1: 2.0, 2: 3.0, 3: 10.0}
    outcome = policy.apply(times)
    # quorum index: 2nd arrival (t=2) -> deadline 4.0
    assert outcome.deadline_s == pytest.approx(4.0)
    assert outcome.discarded == [3]


def test_empty_times_raises():
    with pytest.raises(ValueError):
        DeadlinePolicy().apply({})


def test_invalid_parameters():
    with pytest.raises(ValueError):
        DeadlinePolicy(quorum_fraction=0.0)
    with pytest.raises(ValueError):
        DeadlinePolicy(deadline_multiplier=0.5)


def test_churn_never_empties_membership(rng):
    present = simulate_membership_churn(
        list(range(5)), round_index=1, leave_prob=1.0, rejoin_after=3,
        rng=rng,
    )
    assert present  # at least one worker always remains


def test_churn_no_leaves_at_zero_probability(rng):
    present = simulate_membership_churn(
        list(range(5)), round_index=1, leave_prob=0.0, rejoin_after=3,
        rng=rng,
    )
    assert present == list(range(5))
