"""Deadline-based fault tolerance (Section V-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.faults import DeadlinePolicy, simulate_membership_churn


def test_straggler_discarded():
    policy = DeadlinePolicy(quorum_fraction=0.85, deadline_multiplier=1.5)
    times = {i: 10.0 + i for i in range(9)}
    times[9] = 100.0
    outcome = policy.apply(times)
    assert outcome.discarded == [9]
    assert 9 not in outcome.accepted
    assert outcome.round_time_s == pytest.approx(18.0)


def test_all_accepted_when_homogeneous():
    policy = DeadlinePolicy()
    times = {i: 10.0 for i in range(10)}
    outcome = policy.apply(times)
    assert outcome.discarded == []
    assert len(outcome.accepted) == 10


def test_deadline_is_multiple_of_quorum_time():
    policy = DeadlinePolicy(quorum_fraction=0.5, deadline_multiplier=2.0)
    times = {0: 1.0, 1: 2.0, 2: 3.0, 3: 10.0}
    outcome = policy.apply(times)
    # quorum index: 2nd arrival (t=2) -> deadline 4.0
    assert outcome.deadline_s == pytest.approx(4.0)
    assert outcome.discarded == [3]


def test_empty_times_raises():
    with pytest.raises(ValueError):
        DeadlinePolicy().apply({})


def test_invalid_parameters():
    with pytest.raises(ValueError):
        DeadlinePolicy(quorum_fraction=0.0)
    with pytest.raises(ValueError):
        DeadlinePolicy(deadline_multiplier=0.5)


def test_churn_all_leave_raises_empty_round(rng):
    # every worker leaving must surface as a typed error, not the old
    # silent pretend-the-first-worker-stayed fallback (and never hang)
    from repro.fl.aggregation import EmptyRoundError

    with pytest.raises(EmptyRoundError, match="churn removed all"):
        simulate_membership_churn(
            list(range(5)), round_index=1, leave_prob=1.0,
            rejoin_after=3, rng=rng,
        )


def test_churn_all_leave_still_consumes_all_draws():
    # the per-worker draws are consumed even when the round raises, so
    # the churn stream position is independent of the outcome
    from repro.fl.aggregation import EmptyRoundError

    rng_a = np.random.default_rng(7)
    rng_b = np.random.default_rng(7)
    with pytest.raises(EmptyRoundError):
        simulate_membership_churn(
            list(range(5)), round_index=1, leave_prob=1.0,
            rejoin_after=3, rng=rng_a,
        )
    for _ in range(5):
        rng_b.random()
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


def test_churn_no_leaves_at_zero_probability(rng):
    present = simulate_membership_churn(
        list(range(5)), round_index=1, leave_prob=0.0, rejoin_after=3,
        rng=rng,
    )
    assert present == list(range(5))


def test_churn_rejoin_after_zero_means_nobody_leaves():
    # rejoin_after=0 -> cycle length 1 -> round_index % 1 == 0 for every
    # round, so the leave branch can never fire even at leave_prob=1.0
    rng = np.random.default_rng(11)
    for round_index in range(4):
        present = simulate_membership_churn(
            list(range(5)), round_index=round_index, leave_prob=1.0,
            rejoin_after=0, rng=rng,
        )
        assert present == list(range(5))


def test_churn_rejoin_after_zero_still_consumes_draws():
    # even though nobody can leave, the per-worker uniform draws are
    # consumed -- flipping rejoin_after must not shift the stream
    rng_a = np.random.default_rng(13)
    rng_b = np.random.default_rng(13)
    simulate_membership_churn(
        list(range(6)), round_index=2, leave_prob=1.0, rejoin_after=0,
        rng=rng_a,
    )
    simulate_membership_churn(
        list(range(6)), round_index=2, leave_prob=0.3, rejoin_after=4,
        rng=rng_b,
    )
    assert rng_a.bit_generator.state == rng_b.bit_generator.state
