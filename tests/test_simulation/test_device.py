"""Table II device model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.device import (
    JETSON_TX2_MODES,
    ComputingMode,
    DeviceProfile,
)


def test_table2_has_four_modes():
    assert sorted(JETSON_TX2_MODES) == [0, 1, 2, 3]


def test_table2_frequencies_verbatim():
    mode0 = JETSON_TX2_MODES[0]
    assert mode0.denver == (2, 2.0)
    assert mode0.cortex_a57 == (4, 2.0)
    assert mode0.gpu_ghz == 1.30
    mode3 = JETSON_TX2_MODES[3]
    assert mode3.denver is None
    assert mode3.cortex_a57 == (4, 1.2)
    assert mode3.gpu_ghz == 0.85


def test_relative_speed_monotone_decreasing():
    """Capability decreases from mode 0 to mode 3 (Section V-A)."""
    speeds = [JETSON_TX2_MODES[i].relative_speed for i in range(4)]
    assert all(a > b for a, b in zip(speeds, speeds[1:]))
    assert speeds[0] == pytest.approx(1.0)


def test_flops_scale_with_relative_speed():
    m0, m3 = JETSON_TX2_MODES[0], JETSON_TX2_MODES[3]
    assert m0.flops_per_second > m3.flops_per_second
    assert m3.flops_per_second > 0


def test_cpu_ghz_totals():
    assert JETSON_TX2_MODES[0].cpu_ghz_total == pytest.approx(12.0)
    assert JETSON_TX2_MODES[1].cpu_ghz_total == pytest.approx(8.0)


def test_device_profile_describe():
    profile = DeviceProfile(device_id=3, mode=JETSON_TX2_MODES[1],
                            bandwidth_bps=5e6, cluster="B")
    text = profile.describe()
    assert "device 3" in text
    assert "mode 1" in text
    assert "5.0 Mbps" in text
