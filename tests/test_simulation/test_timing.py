"""Completion-time model (Eq. 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.device import (
    JETSON_TX2_MODES,
    TRAIN_FLOPS_MULTIPLIER,
    DeviceProfile,
)
from repro.simulation.timing import BYTES_PER_PARAM, RoundCosts, TimingModel


def _device(mode=0, bandwidth=10e6, device_id=0):
    return DeviceProfile(device_id=device_id, mode=JETSON_TX2_MODES[mode],
                         bandwidth_bps=bandwidth)


def test_computation_time_formula():
    model = TimingModel(_device(), jitter_sigma=0.0)
    flops = 1e6
    t = model.computation_time(flops, batch_size=10, local_iterations=2)
    expected = flops * TRAIN_FLOPS_MULTIPLIER * 10 * 2 \
        / _device().flops_per_second
    assert t == pytest.approx(expected)


def test_transfer_time_formula():
    model = TimingModel(_device(bandwidth=8e6), jitter_sigma=0.0)
    t = model.transfer_time(1_000_000)
    expected_bits = 1_000_000 * BYTES_PER_PARAM * 8
    assert t == pytest.approx(expected_bits / 8e6)


def test_round_costs_sum():
    model = TimingModel(_device(), jitter_sigma=0.0)
    costs = model.round_costs(1e6, 1000, 500, batch_size=8, local_iterations=3)
    assert costs.total_s == pytest.approx(
        costs.computation_s + costs.download_s + costs.upload_s
    )
    assert costs.communication_s == pytest.approx(
        costs.download_s + costs.upload_s
    )


def test_slower_mode_takes_longer():
    fast = TimingModel(_device(mode=0), jitter_sigma=0.0)
    slow = TimingModel(_device(mode=3), jitter_sigma=0.0)
    assert (
        slow.computation_time(1e6, 8, 2) > fast.computation_time(1e6, 8, 2)
    )


def test_pruning_reduces_both_terms():
    """Fig. 5's mechanism: fewer FLOPs and fewer params -> less time."""
    model = TimingModel(_device(), jitter_sigma=0.0)
    full = model.round_costs(2e6, 2000, 2000, 8, 2)
    pruned = model.round_costs(1e6, 1000, 1000, 8, 2)
    assert pruned.computation_s < full.computation_s
    assert pruned.communication_s < full.communication_s


def test_jitter_reproducible_per_device_seed():
    a = TimingModel(_device(device_id=7), jitter_sigma=0.1)
    b = TimingModel(_device(device_id=7), jitter_sigma=0.1)
    assert a.computation_time(1e6, 8, 2) == pytest.approx(
        b.computation_time(1e6, 8, 2)
    )
