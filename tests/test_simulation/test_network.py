"""Wireless link model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.network import (
    REFERENCE_RATE_BPS,
    WirelessLink,
    bandwidth_for_distance,
)


def test_rate_at_reference_distance():
    assert bandwidth_for_distance(10.0) == pytest.approx(REFERENCE_RATE_BPS)


def test_rate_decreases_with_distance():
    rates = [bandwidth_for_distance(d) for d in (10, 20, 40, 80)]
    assert all(a > b for a, b in zip(rates, rates[1:]))


def test_rate_floor():
    assert bandwidth_for_distance(10_000.0) >= 0.05 * REFERENCE_RATE_BPS


def test_invalid_distance():
    with pytest.raises(ValueError):
        bandwidth_for_distance(0.0)


def test_transfer_time_deterministic_without_jitter():
    link = WirelessLink(8e6, jitter_sigma=0.0)
    assert link.transfer_time(1e6) == pytest.approx(1.0)  # 8 Mbit at 8 Mbps


def test_transfer_time_jitter_reproducible():
    a = WirelessLink(8e6, jitter_sigma=0.2, rng=np.random.default_rng(5))
    b = WirelessLink(8e6, jitter_sigma=0.2, rng=np.random.default_rng(5))
    assert a.transfer_time(1e6) == pytest.approx(b.transfer_time(1e6))


def test_invalid_bandwidth():
    with pytest.raises(ValueError):
        WirelessLink(0.0)
