"""Clusters A/B/C and the heterogeneity scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.cluster import (
    CLUSTERS,
    HETEROGENEITY_SCENARIOS,
    make_cluster_devices,
    make_scenario_devices,
    scenario_table,
)


def test_cluster_specs_match_fig3():
    assert CLUSTERS["A"].modes == (0, 1)
    assert CLUSTERS["B"].modes == (1, 2)
    assert CLUSTERS["C"].modes == (2, 3)
    # distance ranges increase A -> B -> C
    assert CLUSTERS["A"].distance_range_m[1] <= CLUSTERS["B"].distance_range_m[1]
    assert CLUSTERS["B"].distance_range_m[1] <= CLUSTERS["C"].distance_range_m[1]


def test_scenarios_match_section_5e():
    assert HETEROGENEITY_SCENARIOS["low"] == {"A": 10}
    assert HETEROGENEITY_SCENARIOS["medium"] == {"A": 5, "B": 5}
    assert HETEROGENEITY_SCENARIOS["high"] == {"A": 3, "B": 3, "C": 4}


def test_cluster_devices_modes_in_spec(rng):
    devices = make_cluster_devices("C", 20, rng)
    assert len(devices) == 20
    assert all(d.mode.index in (2, 3) for d in devices)
    assert all(d.cluster == "C" for d in devices)


def test_unknown_cluster_raises(rng):
    with pytest.raises(KeyError):
        make_cluster_devices("Z", 1, rng)


def test_scenario_device_ids_unique(rng):
    devices = make_scenario_devices("high", rng)
    ids = [d.device_id for d in devices]
    assert len(set(ids)) == len(ids) == 10


def test_scenario_mapping_form(rng):
    devices = make_scenario_devices({"A": 2, "C": 3}, rng)
    clusters = sorted(d.cluster for d in devices)
    assert clusters == ["A", "A", "C", "C", "C"]


def test_unknown_scenario_raises(rng):
    with pytest.raises(KeyError):
        make_scenario_devices("extreme", rng)


def test_scenario_reproducible_from_seed():
    a = make_scenario_devices("medium", np.random.default_rng(3))
    b = make_scenario_devices("medium", np.random.default_rng(3))
    for da, db in zip(a, b):
        assert da.mode.index == db.mode.index
        assert da.bandwidth_bps == pytest.approx(db.bandwidth_bps)


def test_high_scenario_slower_than_low_on_average(rng):
    low = make_scenario_devices("low", np.random.default_rng(1))
    high = make_scenario_devices("high", np.random.default_rng(1))
    mean_speed = lambda ds: np.mean([d.mode.relative_speed for d in ds])
    mean_bw = lambda ds: np.mean([d.bandwidth_bps for d in ds])
    assert mean_speed(low) > mean_speed(high)
    assert mean_bw(low) > mean_bw(high)


def test_scenario_table_rows(rng):
    devices = make_scenario_devices("low", rng)
    rows = scenario_table(devices)
    assert len(rows) == 10
    assert all(len(row) == 4 for row in rows)
