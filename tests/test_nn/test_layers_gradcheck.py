"""Finite-difference gradient checks for every layer type.

All checks run in float64 mode; tolerances are absolute against central
differences with eps=1e-6, so passing means the manual backward passes
are exact (not approximations).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)

TOL = 1e-6


def _mse_scalar(layer, x, target):
    def fn():
        return 0.5 * float(((layer.forward(x) - target) ** 2).sum())
    return fn


def _run_layer_check(layer, x, gradcheck, param_names=(), check_input=True):
    target = np.zeros_like(layer.forward(x))
    fn = _mse_scalar(layer, x, target)
    out = layer.forward(x)
    layer.zero_grad()
    grad_x = layer.backward(out - target)

    for name in param_names:
        expected = gradcheck(fn, layer.params[name])
        assert np.abs(layer.grads[name] - expected).max() < TOL, name
    if check_input:
        expected = gradcheck(fn, x)
        assert np.abs(grad_x - expected).max() < TOL


@pytest.mark.usefixtures("float64_mode")
class TestGradients:
    def test_linear(self, rng, gradcheck):
        layer = Linear(5, 4, rng=rng)
        x = rng.normal(size=(3, 5))
        _run_layer_check(layer, x, gradcheck, ("weight", "bias"))

    def test_conv2d_basic(self, rng, gradcheck):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        _run_layer_check(layer, x, gradcheck, ("weight", "bias"))

    def test_conv2d_strided_no_padding(self, rng, gradcheck):
        layer = Conv2d(3, 2, 3, stride=2, padding=0, rng=rng)
        x = rng.normal(size=(2, 3, 7, 7))
        _run_layer_check(layer, x, gradcheck, ("weight", "bias"))

    def test_conv2d_1x1(self, rng, gradcheck):
        layer = Conv2d(4, 2, 1, rng=rng)
        x = rng.normal(size=(2, 4, 3, 3))
        _run_layer_check(layer, x, gradcheck, ("weight", "bias"))

    def test_batchnorm_training(self, rng, gradcheck):
        layer = BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 4, 4))
        _run_layer_check(layer, x, gradcheck, ("gamma", "beta"))

    def test_batchnorm_eval(self, rng, gradcheck):
        layer = BatchNorm2d(3)
        # populate running statistics, then check eval-mode gradients
        layer.forward(rng.normal(size=(8, 3, 4, 4)))
        layer.eval()
        x = rng.normal(size=(4, 3, 4, 4))
        _run_layer_check(layer, x, gradcheck, ("gamma", "beta"))

    def test_relu(self, rng, gradcheck):
        layer = ReLU()
        x = rng.normal(size=(4, 6)) + 0.1  # keep away from the kink
        _run_layer_check(layer, x, gradcheck)

    def test_maxpool_fast_path(self, rng, gradcheck):
        layer = MaxPool2d(2)
        x = rng.normal(size=(2, 3, 6, 6))
        _run_layer_check(layer, x, gradcheck)

    def test_maxpool_overlapping(self, rng, gradcheck):
        layer = MaxPool2d(3, stride=2)
        x = rng.normal(size=(2, 2, 7, 7))
        _run_layer_check(layer, x, gradcheck)

    def test_maxpool_nondivisible_input(self, rng, gradcheck):
        layer = MaxPool2d(2)
        x = rng.normal(size=(2, 2, 7, 7))  # trailing row/col trimmed
        _run_layer_check(layer, x, gradcheck)

    def test_avgpool_global(self, rng, gradcheck):
        layer = AvgPool2d(None)
        x = rng.normal(size=(2, 3, 4, 4))
        _run_layer_check(layer, x, gradcheck)

    def test_avgpool_windowed(self, rng, gradcheck):
        layer = AvgPool2d(2)
        x = rng.normal(size=(2, 3, 6, 6))
        _run_layer_check(layer, x, gradcheck)

    def test_flatten(self, rng, gradcheck):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        _run_layer_check(layer, x, gradcheck)


@pytest.mark.usefixtures("float64_mode")
def test_conv_requires_input_grad_false_skips_input_grad(rng):
    layer = Conv2d(2, 3, 3, padding=1, rng=rng)
    layer.requires_input_grad = False
    x = rng.normal(size=(2, 2, 5, 5))
    out = layer.forward(x)
    grad_x = layer.backward(np.ones_like(out))
    assert np.all(grad_x == 0.0)
    # parameter gradients must still be exact
    assert np.abs(layer.grads["bias"] - out.shape[0] * 25).max() < 1e-9
