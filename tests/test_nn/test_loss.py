"""Loss functions: values, gradients, sequence handling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.loss import CrossEntropyLoss, MSELoss, perplexity, softmax


def test_softmax_rows_sum_to_one(rng):
    logits = rng.normal(size=(5, 7)) * 10
    probs = softmax(logits)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert (probs >= 0).all()


def test_softmax_handles_large_logits():
    logits = np.array([[1000.0, 1000.0], [-1000.0, 1000.0]])
    probs = softmax(logits)
    assert np.allclose(probs[0], [0.5, 0.5])
    assert np.allclose(probs[1], [0.0, 1.0])


def test_cross_entropy_uniform_logits():
    criterion = CrossEntropyLoss()
    logits = np.zeros((4, 10))
    targets = np.arange(4)
    assert np.isclose(criterion(logits, targets), np.log(10))


def test_cross_entropy_gradient_matches_softmax_minus_onehot(rng):
    criterion = CrossEntropyLoss()
    logits = rng.normal(size=(3, 5))
    targets = np.array([0, 2, 4])
    criterion(logits, targets)
    grad = criterion.backward()
    expected = softmax(logits)
    expected[np.arange(3), targets] -= 1.0
    expected /= 3
    assert np.allclose(grad, expected)


def test_cross_entropy_gradient_finite_difference(rng, gradcheck):
    criterion = CrossEntropyLoss()
    logits = rng.normal(size=(2, 4))
    targets = np.array([1, 3])

    def fn():
        return criterion(logits, targets)

    criterion(logits, targets)
    grad = criterion.backward()
    assert np.abs(grad - gradcheck(fn, logits)).max() < 1e-7


def test_cross_entropy_sequence_logits(rng):
    criterion = CrossEntropyLoss()
    logits = rng.normal(size=(3, 2, 5))  # (T, B, K)
    targets = rng.integers(0, 5, size=(3, 2))
    loss = criterion(logits, targets)
    grad = criterion.backward()
    assert grad.shape == logits.shape
    flat = CrossEntropyLoss()
    assert np.isclose(
        loss, flat(logits.reshape(-1, 5), targets.reshape(-1))
    )


def test_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        CrossEntropyLoss().backward()
    with pytest.raises(RuntimeError):
        MSELoss().backward()


def test_mse_loss_and_gradient(rng):
    criterion = MSELoss()
    pred = rng.normal(size=(4, 3))
    target = rng.normal(size=(4, 3))
    loss = criterion(pred, target)
    assert np.isclose(loss, ((pred - target) ** 2).mean())
    grad = criterion.backward()
    assert np.allclose(grad, 2 * (pred - target) / pred.size)


def test_perplexity_is_exp_of_cross_entropy():
    assert np.isclose(perplexity(np.log(50.0)), 50.0)
