"""Stacked cohort training must be bitwise equal to the member path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import BatchIterator
from repro.models.cnn import build_cnn
from repro.nn.batched import supports_cohort_training, train_cohort
from repro.nn.layers import BatchNorm2d, Dropout, Linear, ReLU
from repro.nn.loss import CrossEntropyLoss
from repro.nn.module import Sequential
from repro.nn.optim import SGD, ProximalSGD

MEMBERS = 3
BATCH = 6
TAU = 4
CLASSES = 4


def _model():
    return build_cnn(num_classes=CLASSES, input_shape=(1, 8, 8),
                     rng=np.random.default_rng(3))


def _iterators(seed_base):
    iterators = []
    for index in range(MEMBERS):
        rng = np.random.default_rng(seed_base + index)
        inputs = rng.normal(size=(20, 1, 8, 8)).astype(np.float32)
        targets = rng.integers(0, CLASSES, size=20)
        iterators.append(BatchIterator(
            inputs, targets, BATCH,
            rng=np.random.default_rng(1000 + index),
        ))
    return iterators


def _member_reference(init_state, tau, **hyper):
    """The per-member path: repro.fl.worker.Worker.local_train inlined."""
    prox_mu = hyper.pop("prox_mu", 0.0)
    anchor = hyper.pop("anchor", None)
    states, losses = [], []
    for iterator in _iterators(50):
        model = _model()
        model.load_state_dict(init_state)
        model.train()
        if prox_mu > 0.0:
            optimizer = ProximalSGD(model, mu=prox_mu, **hyper)
            optimizer.set_anchor(
                anchor if anchor is not None else model.state_dict()
            )
        else:
            optimizer = SGD(model, **hyper)
        criterion = CrossEntropyLoss()
        total = 0.0
        for _ in range(tau):
            inputs, targets = iterator.next_batch()
            logits = model.forward(inputs)
            total += criterion(logits, targets)
            model.zero_grad()
            model.backward(criterion.backward())
            optimizer.step()
        states.append(model.state_dict())
        losses.append(total / tau)
    return states, losses


def _assert_bitwise(states_a, losses_a, states_b, losses_b):
    assert losses_a == losses_b
    assert len(states_a) == len(states_b)
    for state_a, state_b in zip(states_a, states_b):
        assert state_a.keys() == state_b.keys()
        for key in state_a:
            a, b = state_a[key], state_b[key]
            assert a.dtype == b.dtype, key
            assert a.shape == b.shape, key
            assert np.array_equal(a.view(np.uint8), b.view(np.uint8)), key


@pytest.mark.parametrize("hyper", [
    dict(lr=0.05),
    dict(lr=0.05, momentum=0.9),
    dict(lr=0.05, clip_norm=0.5),
    dict(lr=0.05, momentum=0.9, weight_decay=0.01, clip_norm=2.0),
    dict(lr=0.05, prox_mu=0.1),
], ids=["plain", "momentum", "clip", "full", "prox"])
def test_cohort_training_matches_member_path(hyper):
    init_state = _model().state_dict()
    hyper = dict(hyper)
    if "prox_mu" in hyper:
        hyper["anchor"] = init_state
    ref_states, ref_losses = _member_reference(init_state, TAU, **hyper)
    anchor = hyper.pop("anchor", None)
    cohort_states, cohort_losses = train_cohort(
        _model(), init_state, _iterators(50), TAU, anchor=anchor, **hyper
    )
    _assert_bitwise(ref_states, ref_losses, cohort_states, cohort_losses)


def test_supports_cohort_training():
    assert supports_cohort_training(_model())
    assert not supports_cohort_training(Sequential(
        ("fc", Linear(4, 4)), ("drop", Dropout(0.3)),
    ))
    assert not supports_cohort_training(Sequential(
        ("bn", BatchNorm2d(4)), ("relu", ReLU()),
    ))
    assert not supports_cohort_training(Linear(4, 4))


def test_unequal_batch_sizes_rejected():
    init_state = _model().state_dict()
    iterators = _iterators(50)
    rng = np.random.default_rng(9)
    # a shard smaller than BATCH clamps its iterator's batch size
    small = BatchIterator(
        rng.normal(size=(BATCH - 2, 1, 8, 8)).astype(np.float32),
        rng.integers(0, CLASSES, size=BATCH - 2),
        BATCH, rng=np.random.default_rng(4),
    )
    with pytest.raises(ValueError, match="unequal batch sizes"):
        train_cohort(_model(), init_state, iterators + [small], 1, lr=0.05)
