"""Module tree traversal, state_dict round-trips, train/eval modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import BatchNorm2d, Conv2d, Dropout, Linear, ReLU
from repro.nn.module import Module, Sequential


def _toy_model(rng):
    return Sequential(
        ("conv", Conv2d(1, 2, 3, padding=1, rng=rng)),
        ("bn", BatchNorm2d(2)),
        ("relu", ReLU()),
    )


def test_named_parameters_qualified_names(rng):
    model = _toy_model(rng)
    names = {name for name, _ in model.named_parameters()}
    assert names == {"conv.weight", "conv.bias", "bn.gamma", "bn.beta"}


def test_state_dict_roundtrip_preserves_values(rng):
    model = _toy_model(rng)
    state = model.state_dict()
    other = _toy_model(np.random.default_rng(99))
    other.load_state_dict(state)
    for key, value in other.state_dict().items():
        assert np.allclose(value, state[key]), key


def test_state_dict_returns_copies(rng):
    model = _toy_model(rng)
    state = model.state_dict()
    state["conv.weight"][:] = 123.0
    assert not np.allclose(
        dict(model.named_parameters())["conv.weight"], 123.0
    )


def test_load_state_dict_strict_missing_key_raises(rng):
    model = _toy_model(rng)
    state = model.state_dict()
    del state["conv.weight"]
    with pytest.raises(KeyError):
        model.load_state_dict(state)


def test_load_state_dict_shape_mismatch_raises(rng):
    model = _toy_model(rng)
    state = model.state_dict()
    state["conv.weight"] = np.zeros((5, 5))
    with pytest.raises(ValueError):
        model.load_state_dict(state)


def test_train_eval_propagates_to_children(rng):
    model = _toy_model(rng)
    model.eval()
    assert all(not m.training for _, m in model.named_modules())
    model.train()
    assert all(m.training for _, m in model.named_modules())


def test_zero_grad_clears_all_gradients(rng):
    model = _toy_model(rng)
    x = rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
    out = model.forward(x)
    model.backward(np.ones_like(out))
    assert any(np.abs(g).sum() > 0 for _, g in model.named_grads())
    model.zero_grad()
    assert all(np.abs(g).sum() == 0 for _, g in model.named_grads())


def test_num_parameters_counts_scalars(rng):
    model = _toy_model(rng)
    # conv: 2*1*3*3 + 2; bn: 2 + 2
    assert model.num_parameters() == 18 + 2 + 4


def test_sequential_rejects_non_module():
    with pytest.raises(TypeError):
        Sequential(("bad", 42))


def test_sequential_named_layer_access(rng):
    model = _toy_model(rng)
    assert isinstance(model.get("conv"), Conv2d)
    assert model.layer_names == ["conv", "bn", "relu"]


def test_dropout_eval_is_identity(rng):
    layer = Dropout(0.5, rng=rng)
    layer.eval()
    x = rng.normal(size=(4, 5)).astype(np.float32)
    assert np.allclose(layer.forward(x), x)


def test_dropout_training_masks_and_scales(rng):
    layer = Dropout(0.5, rng=np.random.default_rng(3))
    x = np.ones((200, 50), dtype=np.float32)
    out = layer.forward(x)
    zero_fraction = float((out == 0).mean())
    assert 0.4 < zero_fraction < 0.6
    kept = out[out != 0]
    assert np.allclose(kept, 2.0)  # inverted scaling


def test_dropout_invalid_probability():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_module_forward_backward_not_implemented():
    base = Module()
    with pytest.raises(NotImplementedError):
        base.forward(np.zeros(1))
    with pytest.raises(NotImplementedError):
        base.backward(np.zeros(1))
