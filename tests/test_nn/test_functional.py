"""im2col/col2im adjointness and activation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F


def test_conv_output_size():
    assert F.conv_output_size(28, 5, 1, 2) == 28
    assert F.conv_output_size(28, 2, 2, 0) == 14
    assert F.conv_output_size(7, 3, 2, 0) == 3


def test_im2col_shapes(rng):
    x = rng.normal(size=(2, 3, 6, 6))
    cols = F.im2col(x, 3, 3, 1, 1)
    assert cols.shape == (2 * 6 * 6, 3 * 9)


def test_im2col_content_matches_naive(rng):
    x = rng.normal(size=(1, 2, 4, 4))
    cols = F.im2col(x, 2, 2, 1, 0)
    # first output position is the top-left patch, channel-major
    patch = x[0, :, 0:2, 0:2].reshape(-1)
    assert np.allclose(cols[0], patch)
    # last position is the bottom-right patch
    patch = x[0, :, 2:4, 2:4].reshape(-1)
    assert np.allclose(cols[-1], patch)


def test_col2im_is_adjoint_of_im2col(rng):
    """<im2col(x), y> == <x, col2im(y)> for random x, y (exact adjoint)."""
    x = rng.normal(size=(2, 3, 5, 5))
    kh = kw = 3
    stride, padding = 2, 1
    cols = F.im2col(x, kh, kw, stride, padding)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * F.col2im(y, x.shape, kh, kw, stride, padding)).sum())
    assert np.isclose(lhs, rhs)


def test_sigmoid_stable_and_correct():
    x = np.array([-1000.0, 0.0, 1000.0])
    out = F.sigmoid(x)
    assert np.allclose(out, [0.0, 0.5, 1.0])
    assert not np.isnan(out).any()


def test_log_softmax_matches_definition(rng):
    logits = rng.normal(size=(4, 6))
    ls = F.log_softmax(logits)
    assert np.allclose(np.exp(ls).sum(axis=1), 1.0)


def test_relu_functional():
    assert np.allclose(F.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])


def test_tanh_matches_numpy(rng):
    x = rng.normal(size=(3, 3))
    assert np.allclose(F.tanh(x), np.tanh(x))
