"""Evaluation metrics."""

from __future__ import annotations

import numpy as np

from repro.models import build_cnn, build_lstm_lm
from repro.nn.metrics import (
    accuracy,
    evaluate_classifier,
    evaluate_language_model,
)


def test_accuracy_basic():
    logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
    targets = np.array([0, 1, 1])
    assert np.isclose(accuracy(logits, targets), 2 / 3)


def test_evaluate_classifier_restores_training_mode(rng):
    model = build_cnn(rng=rng)
    model.train()
    x = rng.normal(size=(8, 1, 28, 28)).astype(np.float32)
    y = rng.integers(0, 10, size=8)
    acc, loss = evaluate_classifier(model, x, y, batch_size=4)
    assert 0.0 <= acc <= 1.0
    assert loss > 0
    assert model.training  # restored


def test_evaluate_classifier_batching_is_consistent(rng):
    model = build_cnn(rng=rng)
    x = rng.normal(size=(10, 1, 28, 28)).astype(np.float32)
    y = rng.integers(0, 10, size=10)
    model.eval()
    acc_small, loss_small = evaluate_classifier(model, x, y, batch_size=3)
    acc_big, loss_big = evaluate_classifier(model, x, y, batch_size=10)
    assert np.isclose(acc_small, acc_big)
    assert np.isclose(loss_small, loss_big, rtol=1e-5)


def test_evaluate_language_model_uniform_ppl(rng):
    model = build_lstm_lm(vocab_size=50, embedding_dim=8, hidden_size=8,
                          rng=rng)
    seqs = rng.integers(0, 50, size=(2, 5, 3))
    targets = rng.integers(0, 50, size=(2, 5, 3))
    ppl, ce = evaluate_language_model(model, seqs, targets)
    assert ppl > 1.0
    assert np.isclose(ppl, np.exp(ce))
