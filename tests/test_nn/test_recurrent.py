"""LSTM / Embedding gradient checks and shape behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.recurrent import LSTM, Embedding

TOL = 1e-6


@pytest.mark.usefixtures("float64_mode")
def test_lstm_full_gradcheck(rng, gradcheck):
    lstm = LSTM(3, 4, rng=rng)
    x = rng.normal(size=(4, 2, 3))
    target = rng.normal(size=(4, 2, 4))

    def fn():
        return 0.5 * float(((lstm.forward(x) - target) ** 2).sum())

    out = lstm.forward(x)
    lstm.zero_grad()
    grad_x = lstm.backward(out - target)

    for name in ("w_ih", "w_hh", "bias"):
        expected = gradcheck(fn, lstm.params[name])
        assert np.abs(lstm.grads[name] - expected).max() < TOL, name
    expected = gradcheck(fn, x)
    assert np.abs(grad_x - expected).max() < TOL


@pytest.mark.usefixtures("float64_mode")
def test_embedding_gradients_accumulate_repeated_ids(rng):
    embed = Embedding(6, 3, rng=rng)
    ids = np.array([[1, 1], [1, 2]])  # token 1 appears three times
    out = embed.forward(ids)
    embed.zero_grad()
    embed.backward(np.ones_like(out))
    assert np.allclose(embed.grads["weight"][1], 3.0)
    assert np.allclose(embed.grads["weight"][2], 1.0)
    assert np.allclose(embed.grads["weight"][0], 0.0)


def test_lstm_output_shape_and_determinism(rng):
    lstm = LSTM(5, 7, rng=rng)
    x = rng.normal(size=(6, 3, 5)).astype(np.float32)
    out1 = lstm.forward(x)
    out2 = lstm.forward(x)
    assert out1.shape == (6, 3, 7)
    assert np.allclose(out1, out2)


def test_lstm_forget_bias_initialised_to_one(rng):
    lstm = LSTM(3, 4, rng=rng)
    hidden = lstm.hidden_size
    assert np.allclose(lstm.params["bias"][hidden:2 * hidden], 1.0)
    assert np.allclose(lstm.params["bias"][:hidden], 0.0)


def test_embedding_forward_looks_up_rows(rng):
    embed = Embedding(10, 4, rng=rng)
    ids = np.array([[0, 9], [3, 3]])
    out = embed.forward(ids)
    assert out.shape == (2, 2, 4)
    assert np.allclose(out[0, 1], embed.params["weight"][9])
