"""SGD and FedProx proximal SGD behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Sequential
from repro.nn.optim import SGD, ProximalSGD


def _one_layer(rng):
    return Sequential(("fc", Linear(3, 2, rng=rng)))


def test_sgd_step_moves_against_gradient(rng):
    model = _one_layer(rng)
    layer = model.get("fc")
    before = layer.params["weight"].copy()
    layer.grads["weight"][:] = 1.0
    SGD(model, lr=0.1).step()
    assert np.allclose(layer.params["weight"], before - 0.1)


def test_sgd_weight_decay(rng):
    model = _one_layer(rng)
    layer = model.get("fc")
    before = layer.params["weight"].copy()
    SGD(model, lr=0.1, weight_decay=0.5).step()  # zero gradients
    assert np.allclose(layer.params["weight"], before * (1 - 0.05), atol=1e-6)


def test_sgd_momentum_accumulates(rng):
    model = _one_layer(rng)
    layer = model.get("fc")
    before = layer.params["weight"].copy()
    optimizer = SGD(model, lr=1.0, momentum=0.5)
    layer.grads["weight"][:] = 1.0
    optimizer.step()          # velocity = 1
    layer.grads["weight"][:] = 1.0
    optimizer.step()          # velocity = 1.5
    assert np.allclose(layer.params["weight"], before - 2.5)


def test_sgd_rejects_nonpositive_lr(rng):
    with pytest.raises(ValueError):
        SGD(_one_layer(rng), lr=0.0)


def test_proximal_sgd_pulls_toward_anchor(rng):
    model = _one_layer(rng)
    layer = model.get("fc")
    anchor_state = {
        key: np.zeros_like(value) for key, value in model.state_dict().items()
    }
    optimizer = ProximalSGD(model, lr=0.1, mu=1.0)
    optimizer.set_anchor(anchor_state)
    before = layer.params["weight"].copy()
    optimizer.step()  # gradient is zero, so update = -lr * mu * (w - 0)
    assert np.allclose(layer.params["weight"], before * 0.9, atol=1e-6)


def test_proximal_sgd_mu_zero_equals_sgd(rng):
    model_a = _one_layer(rng)
    model_b = _one_layer(np.random.default_rng(12345))
    model_b.load_state_dict(model_a.state_dict())
    for model in (model_a, model_b):
        model.get("fc").grads["weight"][:] = 0.7
    prox = ProximalSGD(model_a, lr=0.2, mu=0.0)
    prox.set_anchor(model_a.state_dict())
    prox.step()
    SGD(model_b, lr=0.2).step()
    assert np.allclose(
        model_a.get("fc").params["weight"], model_b.get("fc").params["weight"]
    )


def test_proximal_sgd_rejects_negative_mu(rng):
    with pytest.raises(ValueError):
        ProximalSGD(_one_layer(rng), lr=0.1, mu=-1.0)


def test_momentum_buffer_survives_shape_consistency(rng):
    """Momentum slots are keyed per module and reset on shape change."""
    model = _one_layer(rng)
    layer = model.get("fc")
    optimizer = SGD(model, lr=0.1, momentum=0.9)
    layer.grads["weight"][:] = 1.0
    optimizer.step()
    # simulate a sub-model reload with a different shape
    layer.params["weight"] = np.zeros((2, 2))
    layer.grads["weight"] = np.ones((2, 2))
    optimizer.step()  # must not raise
    assert layer.params["weight"].shape == (2, 2)
