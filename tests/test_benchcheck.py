"""Benchmark regression gating (`repro bench check`)."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.benchcheck import (
    DEFAULT_TOLERANCE,
    compare,
    extract_metrics,
    load_report,
    tolerance_for,
    write_report,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

FLEET_REPORT = {
    "benchmark": "fleet_scale_rounds",
    "smoke": False,
    "fleets": [
        {"fleet": 1000,
         "member_full": {"rounds_per_s": 1.0},
         "cohort_sampled": {"rounds_per_s": 5.0},
         "speedup_vs_member_full": 5.0},
        {"fleet": 100_000,
         "cohort_sampled": {"rounds_per_s": 4.0}},
    ],
}


def regressed(report, factor=20.0):
    clone = copy.deepcopy(report)
    for entry in clone["fleets"]:
        for stats in entry.values():
            if isinstance(stats, dict):
                stats["rounds_per_s"] /= factor
    return clone


def test_extract_fleet_metrics():
    metrics = extract_metrics(FLEET_REPORT)
    assert metrics == {
        "fleet[1000].member_full.rounds_per_s": 1.0,
        "fleet[1000].cohort_sampled.rounds_per_s": 5.0,
        "fleet[100000].cohort_sampled.rounds_per_s": 4.0,
    }


def test_extract_hotpath_and_parallel_metrics():
    hotpath = extract_metrics({
        "benchmark": "dispatch_aggregate_hotpath",
        "speedup_wall": 1.1, "peak_alloc_ratio": 1.5,
    })
    assert hotpath == {"hotpath.speedup_wall": 1.1,
                       "hotpath.peak_alloc_ratio": 1.5}
    # BENCH_parallel.json has no 'benchmark' field: shape-detected
    parallel = extract_metrics({
        "modes": {"emulated": {"train_phase_speedup": 2.0,
                               "wall_speedup": 1.4}},
        "wire_consistency": {},
    })
    assert parallel == {"parallel.emulated.train_phase_speedup": 2.0,
                        "parallel.emulated.wall_speedup": 1.4}


def test_extract_serve_metrics():
    metrics = extract_metrics({
        "benchmark": "serve_loopback",
        "fleets": [
            {"fleet": 4, "rounds_per_s": 1.2,
             "relative_throughput": 0.9},
            {"fleet": 16, "rounds_per_s": 0.3,
             "relative_throughput": 0.6},
        ],
    })
    assert metrics == {
        "serve.fleet[4].rounds_per_s": 1.2,
        "serve.fleet[4].relative_throughput": 0.9,
        "serve.fleet[16].rounds_per_s": 0.3,
        "serve.fleet[16].relative_throughput": 0.6,
    }
    assert tolerance_for("serve.fleet[4].rounds_per_s") == 0.5


def test_extract_rejects_unknown_report():
    with pytest.raises(ValueError, match="unrecognised"):
        extract_metrics({"something": "else"})


def test_self_compare_passes():
    report = compare(FLEET_REPORT, copy.deepcopy(FLEET_REPORT))
    assert report.ok
    assert all(result.ratio == 1.0 for result in report.results)
    assert report.skipped == []


def test_synthetic_regression_fails():
    report = compare(FLEET_REPORT, regressed(FLEET_REPORT))
    assert not report.ok
    assert all(not result.ok for result in report.results)
    assert all(result.ratio == pytest.approx(1 / 20, abs=1e-6)
               for result in report.results)


def test_improvement_and_jitter_pass():
    better = regressed(FLEET_REPORT, factor=0.5)  # 2x faster
    assert compare(FLEET_REPORT, better).ok
    jitter = regressed(FLEET_REPORT, factor=1.2)  # -17%, inside 60%
    assert compare(FLEET_REPORT, jitter).ok


def test_smoke_candidate_skips_unmeasured_modes():
    candidate = {
        "benchmark": "fleet_scale_rounds",
        "smoke": True,
        "fleets": [{"fleet": 100_000,
                    "cohort_sampled": {"rounds_per_s": 3.9}}],
    }
    report = compare(FLEET_REPORT, candidate)
    assert report.ok
    assert [r.metric for r in report.results] == [
        "fleet[100000].cohort_sampled.rounds_per_s"]
    assert sorted(report.skipped) == [
        "fleet[1000].cohort_sampled.rounds_per_s",
        "fleet[1000].member_full.rounds_per_s",
    ]


def test_no_overlap_raises():
    candidate = {"benchmark": "fleet_scale_rounds", "fleets": []}
    with pytest.raises(ValueError, match="no comparable"):
        compare(FLEET_REPORT, candidate)


def test_tolerance_overrides():
    assert tolerance_for("hotpath.speedup_wall") == 0.3
    assert tolerance_for("parallel.emulated.wall_speedup") == 0.5
    assert tolerance_for("fleet[1000].cohort_sampled.rounds_per_s") \
        == DEFAULT_TOLERANCE
    # tightening the default flips a mild regression into a failure
    mild = regressed(FLEET_REPORT, factor=1.5)
    assert compare(FLEET_REPORT, mild).ok
    assert not compare(FLEET_REPORT, mild, default_tolerance=0.1).ok


def test_report_round_trips(tmp_path):
    report = compare(FLEET_REPORT, regressed(FLEET_REPORT))
    out = tmp_path / "check.json"
    write_report(out, report)
    loaded = load_report(out)
    assert loaded["kind"] == "repro-bench-check"
    assert loaded["ok"] is False
    assert len(loaded["results"]) == 3


def test_committed_baselines_self_compare():
    """Every committed BENCH_*.json gates cleanly against itself."""
    baselines = sorted(REPO_ROOT.glob("BENCH_*.json"))
    assert baselines, "no committed benchmark baselines found"
    for path in baselines:
        report = load_report(path)
        assert compare(report, copy.deepcopy(report), str(path)).ok


def test_cli_bench_check_exit_codes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(FLEET_REPORT))
    good = tmp_path / "good.json"
    good.write_text(json.dumps(FLEET_REPORT))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(regressed(FLEET_REPORT)))
    out = tmp_path / "report.json"

    assert main(["bench", "check", "--baseline", str(baseline),
                 "--candidate", str(good)]) == 0
    assert main(["bench", "check", "--baseline", str(baseline),
                 "--candidate", str(bad), "--report", str(out)]) == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "REGRESSION" in captured.err
    assert load_report(out)["ok"] is False
