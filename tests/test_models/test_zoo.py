"""Model zoo: shapes, forward/backward, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    build_alexnet,
    build_cnn,
    build_lstm_lm,
    build_model,
    build_resnet50,
    build_vgg19,
)


@pytest.mark.parametrize(
    "builder,kwargs,input_shape,num_classes",
    [
        (build_cnn, {}, (1, 28, 28), 10),
        (build_alexnet, {"width_mult": 0.125}, (3, 32, 32), 10),
        (build_vgg19, {"width_mult": 0.0625}, (1, 28, 28), 62),
        (
            build_resnet50,
            {"width_mult": 0.125, "blocks_per_stage": (1, 1, 1, 1)},
            (3, 64, 64),
            200,
        ),
    ],
)
def test_forward_backward_shapes(rng, builder, kwargs, input_shape,
                                 num_classes):
    model = builder(rng=rng, **kwargs)
    x = rng.normal(size=(2,) + input_shape).astype(np.float32)
    out = model.forward(x)
    assert out.shape == (2, num_classes)
    model.zero_grad()
    grad = model.backward(np.ones_like(out) / out.size)
    assert grad.shape == x.shape
    assert model.input_shape == input_shape
    assert model.num_classes == num_classes


def test_cnn_matches_paper_architecture(rng):
    """Two 5x5 convs (32, 64 filters), 256-unit FC, 10-way output."""
    model = build_cnn(rng=rng)
    conv1, conv2 = model.get("conv1"), model.get("conv2")
    assert (conv1.out_channels, conv1.kernel_size) == (32, 5)
    assert (conv2.out_channels, conv2.kernel_size) == (64, 5)
    assert model.get("fc1").out_features == 256
    assert model.get("fc2").out_features == 10


def test_vgg19_has_sixteen_convolutions(rng):
    model = build_vgg19(width_mult=0.0625, rng=rng)
    conv_names = [n for n in model.layer_names if n.startswith("conv")]
    assert len(conv_names) == 16


def test_resnet50_default_depth_is_16_blocks(rng):
    model = build_resnet50(width_mult=0.0625, rng=rng)
    blocks = [n for n in model.layer_names if "block" in n]
    assert len(blocks) == 3 + 4 + 6 + 3


def test_resnet_rejects_bad_stage_count(rng):
    with pytest.raises(ValueError):
        build_resnet50(blocks_per_stage=(1, 1), rng=rng)


def test_lstm_lm_forward_shape(rng):
    model = build_lstm_lm(vocab_size=30, embedding_dim=8, hidden_size=12,
                          rng=rng)
    ids = rng.integers(0, 30, size=(4, 2))
    out = model.forward(ids)
    assert out.shape == (4, 2, 30)


def test_registry_builds_by_name(rng):
    model = build_model("cnn", rng=rng)
    assert model.name == "cnn"


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="unknown model"):
        build_model("transformer")


def test_width_mult_scales_parameters(rng):
    small = build_alexnet(width_mult=0.125, rng=rng)
    big = build_alexnet(width_mult=0.25, rng=rng)
    assert big.num_parameters() > small.num_parameters()


def test_builders_are_seed_deterministic():
    a = build_cnn(rng=np.random.default_rng(7))
    b = build_cnn(rng=np.random.default_rng(7))
    for (name, pa), (_, pb) in zip(a.named_parameters(),
                                   b.named_parameters()):
        assert np.allclose(pa, pb), name
