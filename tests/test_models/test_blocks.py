"""Bottleneck block: shapes, skip paths, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.blocks import Bottleneck


def test_identity_skip_shape(rng):
    block = Bottleneck(8, 4, 8, stride=1, rng=rng)
    assert not block.has_projection
    x = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
    out = block.forward(x)
    assert out.shape == (2, 8, 6, 6)


def test_projection_on_channel_change(rng):
    block = Bottleneck(8, 4, 16, stride=1, rng=rng)
    assert block.has_projection
    x = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
    assert block.forward(x).shape == (2, 16, 6, 6)


def test_projection_on_stride(rng):
    block = Bottleneck(8, 4, 8, stride=2, rng=rng)
    assert block.has_projection
    x = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
    assert block.forward(x).shape == (2, 8, 3, 3)


def test_asymmetric_mid_channels(rng):
    block = Bottleneck(8, (4, 6), 8, rng=rng)
    assert block.mid_channels == (4, 6)
    x = rng.normal(size=(2, 8, 6, 6)).astype(np.float32)
    assert block.forward(x).shape == (2, 8, 6, 6)


@pytest.mark.usefixtures("float64_mode")
def test_bottleneck_gradcheck(rng, gradcheck):
    block = Bottleneck(4, 2, 4, stride=1, rng=rng)
    block.eval()  # freeze batch-norm statistics for a clean check
    x = rng.normal(size=(2, 4, 4, 4))
    # warm up running stats so eval mode is well-defined
    block.train()
    block.forward(rng.normal(size=(8, 4, 4, 4)))
    block.eval()

    target = np.zeros_like(block.forward(x))

    def fn():
        return 0.5 * float(((block.forward(x) - target) ** 2).sum())

    out = block.forward(x)
    block.zero_grad()
    grad_x = block.backward(out - target)
    assert np.abs(grad_x - gradcheck(fn, x)).max() < 1e-5

    conv2 = dict(block.children())["conv2"]
    expected = gradcheck(fn, conv2.params["weight"])
    assert np.abs(conv2.grads["weight"] - expected).max() < 1e-5


@pytest.mark.usefixtures("float64_mode")
def test_projection_gradient_flows_through_skip(rng):
    block = Bottleneck(4, 2, 8, stride=1, rng=rng)
    x = rng.normal(size=(2, 4, 4, 4))
    out = block.forward(x)
    block.zero_grad()
    block.backward(np.ones_like(out))
    proj_conv = dict(block.downsample.children())["conv"]
    assert np.abs(proj_conv.grads["weight"]).sum() > 0
