"""FLOP counting: exact values on hand-computable layers, monotonicity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    build_cnn,
    build_lstm_lm,
    build_resnet50,
    count_model_flops,
    count_model_params,
)
from repro.models.flops import _count
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Sequential
from repro.pruning import build_pruning_plan, extract_submodel


def test_linear_flops_exact(rng):
    layer = Linear(10, 4, rng=rng)
    flops, shape = _count(layer, (10,))
    assert flops == 2 * 10 * 4
    assert shape == (4,)


def test_conv_flops_exact(rng):
    layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
    flops, shape = _count(layer, (3, 8, 8))
    assert flops == 2 * (8 * 8 * 8) * (3 * 9)
    assert shape == (8, 8, 8)


def test_cnn_flops_positive_and_stable(rng):
    model = build_cnn(rng=rng)
    assert count_model_flops(model) == count_model_flops(model)
    assert count_model_flops(model) > 1e6


def test_params_matches_module_count(rng):
    model = build_cnn(rng=rng)
    assert count_model_params(model) == model.num_parameters()


def test_flops_decrease_with_pruning(rng):
    model = build_cnn(rng=rng)
    full = count_model_flops(model)
    previous = full
    for ratio in (0.2, 0.5, 0.8):
        plan = build_pruning_plan(model, ratio)
        sub = extract_submodel(model, plan, rng=rng)
        flops = count_model_flops(sub)
        assert flops < previous
        previous = flops


def test_resnet_flops_counts_projection(rng):
    with_proj = build_resnet50(width_mult=0.125, blocks_per_stage=(1, 1, 1, 1),
                               rng=rng)
    assert count_model_flops(with_proj) > 0


def test_lstm_flops_scale_with_seq_len(rng):
    model = build_lstm_lm(vocab_size=50, embedding_dim=8, hidden_size=16,
                          rng=rng)
    short = count_model_flops(model, seq_len=5)
    long = count_model_flops(model, seq_len=10)
    assert np.isclose(long, 2 * short)


def test_unknown_layer_raises():
    class Weird(Sequential):
        pass

    class NotALayer:
        pass

    with pytest.raises(TypeError):
        _count(NotALayer(), (1, 4, 4))
