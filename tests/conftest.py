"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.dtype import get_default_dtype, set_default_dtype


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def float64_mode():
    """Run a test with float64 parameters (finite-difference accuracy)."""
    previous = get_default_dtype()
    set_default_dtype(np.float64)
    yield
    set_default_dtype(previous)


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``fn()`` w.r.t. ``array``.

    ``fn`` must close over ``array`` and return a scalar; the array is
    perturbed in place and restored.
    """
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = fn()
        array[index] = original - eps
        minus = fn()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        iterator.iternext()
    return grad


@pytest.fixture
def gradcheck():
    """Expose the finite-difference helper as a fixture."""
    return numeric_gradient
