"""Theorem 1 / Lemma 1 computations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceBoundTerms,
    deviation_bound_holds,
    theorem1_bound,
)
from repro.analysis.convergence import lemma1_bound, state_squared_distance


def _bound(**overrides):
    params = dict(
        initial_loss=2.3, optimal_loss=0.0, lr=0.05, total_iterations=100,
        num_workers=10, tau=5,
        pruning_errors=[[1.0] * 10 for _ in range(20)],
        smoothness=1.0, sigma=1.0, grad_bound=1.0,
    )
    params.update(overrides)
    return theorem1_bound(**params)


def test_all_terms_positive():
    terms = _bound()
    assert terms.optimisation_gap > 0
    assert terms.pruning_error > 0
    assert terms.gradient_noise > 0
    assert terms.local_drift > 0
    assert terms.total == pytest.approx(
        terms.optimisation_gap + terms.pruning_error
        + terms.gradient_noise + terms.local_drift
    )


def test_bound_monotone_in_pruning_error():
    """Theorem 1's message: more pruning error -> looser bound."""
    small = _bound(pruning_errors=[[0.1] * 10 for _ in range(20)])
    large = _bound(pruning_errors=[[5.0] * 10 for _ in range(20)])
    assert large.pruning_error > small.pruning_error
    assert large.total > small.total
    # the other terms are untouched
    assert large.gradient_noise == pytest.approx(small.gradient_noise)


def test_gap_term_shrinks_with_iterations():
    short = _bound(total_iterations=50,
                   pruning_errors=[[1.0] * 10 for _ in range(10)])
    long = _bound(total_iterations=500,
                  pruning_errors=[[1.0] * 10 for _ in range(100)])
    assert long.optimisation_gap < short.optimisation_gap


def test_lr_constraint_enforced():
    with pytest.raises(ValueError):
        _bound(lr=1.5, smoothness=1.0)
    with pytest.raises(ValueError):
        _bound(lr=0.0)


def test_drift_term_scales_with_tau_squared():
    tau2 = _bound(tau=2)
    tau4 = _bound(tau=4)
    assert tau4.local_drift == pytest.approx(4 * tau2.local_drift)


def test_lemma1_bound_formula():
    assert lemma1_bound(lr=0.1, tau=2, grad_bound=3.0, pruning_error=0.5) \
        == pytest.approx(6 * 0.01 * 4 * 9 + 1.5)


def test_state_squared_distance():
    a = {"w": np.array([1.0, 2.0]), "b": np.array([0.0])}
    b = {"w": np.array([0.0, 0.0]), "b": np.array([2.0])}
    assert state_squared_distance(a, b) == pytest.approx(1 + 4 + 4)


def test_deviation_bound_check(rng):
    global_state = {"w": np.zeros(4)}
    near = {"w": np.full(4, 0.01)}
    far = {"w": np.full(4, 100.0)}
    assert deviation_bound_holds(
        global_state, [near], lr=0.1, tau=2, grad_bound=1.0,
        pruning_errors=[0.0],
    )
    assert not deviation_bound_holds(
        global_state, [far], lr=0.1, tau=2, grad_bound=1.0,
        pruning_errors=[0.0],
    )


def test_deviation_bound_length_mismatch():
    with pytest.raises(ValueError):
        deviation_bound_holds({}, [{}], lr=0.1, tau=1, grad_bound=1.0,
                              pruning_errors=[])
