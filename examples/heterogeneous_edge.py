#!/usr/bin/env python
"""Heterogeneity study: FedMP vs all baselines across edge scenarios.

Reproduces the flavour of Section V-E at example scale: trains AlexNet
on the synthetic CIFAR-10 stand-in under the *Low*, *Medium* and *High*
heterogeneity scenarios and reports the time each method needs to reach
a target accuracy.  Expect FedMP's advantage to widen as heterogeneity
grows -- weak workers get large pruning ratios instead of stalling the
round.

    python examples/heterogeneous_edge.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_synthetic_cifar10
from repro.fl import FLConfig, run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation import make_scenario_devices

TARGET_ACCURACY = 0.80
STRATEGIES = ("synfl", "upfl", "fedprox", "flexcom", "fedmp")


def main() -> None:
    dataset = make_synthetic_cifar10(train_per_class=60, test_per_class=15,
                                     rng=np.random.default_rng(0))
    task = ClassificationTask(
        dataset, "alexnet", model_kwargs={"width_mult": 0.2, "dropout": 0.1}
    )

    print(f"target accuracy: {TARGET_ACCURACY:.0%}\n")
    header = f"{'scenario':<10}" + "".join(f"{s:>10}" for s in STRATEGIES)
    print(header)
    print("-" * len(header))

    for scenario in ("low", "medium", "high"):
        devices = make_scenario_devices(scenario, np.random.default_rng(42))
        row = [f"{scenario:<10}"]
        for strategy in STRATEGIES:
            # scaled-width AlexNet tolerates less pruning than the
            # paper's full model, so cap the bandit's arm space
            bandit_kwargs = {"max_ratio": 0.6, "exploration": 0.25} \
                if strategy in ("fedmp", "upfl") else {}
            config = FLConfig(
                strategy=strategy,
                strategy_kwargs=bandit_kwargs,
                max_rounds=18,
                local_iterations=3,
                batch_size=16,
                lr=0.08,
                eval_every=1,
                target_metric=TARGET_ACCURACY,
                seed=5,
            )
            history = run_federated_training(task, devices, config)
            reached = history.time_to_target(TARGET_ACCURACY)
            row.append(
                f"{reached:>9.0f}s" if reached is not None else f"{'--':>10}"
            )
        print("".join(row))

    print(
        "\n(time is simulated seconds; '--' means the target was not "
        "reached within the round budget)"
    )


if __name__ == "__main__":
    main()
