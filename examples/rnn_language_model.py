#!/usr/bin/env python
"""RNN extension (Section VI): federated LSTM language modelling.

Trains the two-stack LSTM language model on the synthetic Penn TreeBank
stand-in with FedMP's ISS (Intrinsic Sparse Structure) pruning, against
Syn-FL.  The quality metric is test perplexity -- lower is better.

    python examples/rnn_language_model.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_synthetic_ptb
from repro.fl import FLConfig, run_federated_training
from repro.fl.tasks import LanguageModelTask
from repro.simulation import make_scenario_devices


def main() -> None:
    corpus = make_synthetic_ptb(vocab_size=300, train_tokens=30_000,
                                valid_tokens=3_000, test_tokens=3_000,
                                rng=np.random.default_rng(0))
    task = LanguageModelTask(
        corpus, seq_len=12, lm_batch_size=8,
        model_kwargs={"embedding_dim": 24, "hidden_size": 48},
    )
    devices = make_scenario_devices("medium", np.random.default_rng(3))
    uniform_ppl = corpus.vocab_size

    print(f"vocabulary: {corpus.vocab_size} tokens "
          f"(uniform-guess perplexity = {uniform_ppl})\n")
    for strategy in ("synfl", "fedmp"):
        config = FLConfig(
            strategy=strategy,
            max_rounds=12,
            local_iterations=3,
            batch_size=1,
            lr=0.8,
            eval_every=2,
            seed=6,
        )
        history = run_federated_training(task, devices, config)
        print(f"[{strategy}] perplexity over simulated time:")
        for sim_time, perplexity in history.accuracy_curve():
            print(f"  t={sim_time:8.1f}s  ppl={perplexity:8.1f}")
        final = history.final_metric()
        assert final < uniform_ppl, "model failed to beat uniform guessing"
        print(f"  final: {final:.1f} (beats uniform {uniform_ppl})\n")


if __name__ == "__main__":
    main()
