#!/usr/bin/env python
"""Quickstart: train the paper's CNN with FedMP on a heterogeneous edge.

Runs FedMP against plain synchronous FedAvg (Syn-FL) on the synthetic
MNIST stand-in over the paper's *Medium* heterogeneity scenario
(5 cluster-A + 5 cluster-B devices) and prints the accuracy-vs-time
comparison.

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_synthetic_mnist
from repro.fl import FLConfig, run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation import make_scenario_devices


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = make_synthetic_mnist(train_per_class=80, test_per_class=20,
                                   rng=rng)
    task = ClassificationTask(dataset, "cnn")
    devices = make_scenario_devices("medium", np.random.default_rng(7))

    print("Edge deployment (Fig. 3 style clusters):")
    for device in devices:
        print("  " + device.describe())
    print()

    results = {}
    for strategy in ("synfl", "fedmp"):
        config = FLConfig(
            strategy=strategy,
            max_rounds=12,
            local_iterations=3,
            batch_size=16,
            lr=0.05,
            eval_every=2,
            seed=1,
        )
        history = run_federated_training(task, devices, config)
        results[strategy] = history
        print(f"[{strategy}] accuracy over simulated time:")
        for sim_time, accuracy in history.accuracy_curve():
            print(f"  t={sim_time:8.1f}s  acc={accuracy:.3f}")
        print()

    target = 0.90
    syn_time = results["synfl"].time_to_target(target)
    fed_time = results["fedmp"].time_to_target(target)
    print(f"time to {target:.0%} accuracy:")
    print(f"  Syn-FL: {syn_time and f'{syn_time:.1f}s' or 'not reached'}")
    print(f"  FedMP : {fed_time and f'{fed_time:.1f}s' or 'not reached'}")
    if syn_time and fed_time:
        print(f"  speedup: {syn_time / fed_time:.2f}x")

    last = results["fedmp"].rounds[-1]
    print("\nfinal per-worker pruning ratios chosen by E-UCB:")
    for worker_id, ratio in sorted(last.ratios.items()):
        print(f"  worker {worker_id}: alpha = {ratio:.2f}")


if __name__ == "__main__":
    main()
