#!/usr/bin/env python
"""Asynchronous FedMP (Algorithm 2 / Section V-H).

Runs four configurations on the same heterogeneous deployment:
synchronous and asynchronous (m = 5 of 10) variants of both plain FL
and FedMP.  The asynchronous PS aggregates the first m arrivals instead
of waiting for the slowest worker, trading per-update information for
shorter waits.

    python examples/async_training.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_synthetic_mnist
from repro.fl import FLConfig, run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation import make_scenario_devices

TARGET_ACCURACY = 0.85


def main() -> None:
    dataset = make_synthetic_mnist(train_per_class=80, test_per_class=20,
                                   rng=np.random.default_rng(0))
    task = ClassificationTask(dataset, "cnn")
    devices = make_scenario_devices("high", np.random.default_rng(11))

    variants = [
        ("Syn-FL", "synfl", None),
        ("Asyn-FL", "synfl", 5),
        ("FedMP", "fedmp", None),
        ("Asyn-FedMP", "fedmp", 5),
    ]
    print(f"target accuracy: {TARGET_ACCURACY:.0%}\n")
    print(f"{'variant':<14}{'time to target':>16}{'final acc':>12}")
    for label, strategy, async_m in variants:
        config = FLConfig(
            strategy=strategy,
            async_m=async_m,
            max_rounds=30 if async_m else 18,
            local_iterations=3,
            batch_size=16,
            lr=0.05,
            eval_every=1,
            target_metric=TARGET_ACCURACY,
            seed=4,
        )
        history = run_federated_training(task, devices, config)
        reached = history.time_to_target(TARGET_ACCURACY)
        time_text = f"{reached:.0f}s" if reached is not None else "--"
        print(f"{label:<14}{time_text:>16}{history.final_metric():>12.3f}")

    print(
        "\nasynchronous variants cut the waiting-for-stragglers time; "
        "FedMP stacks with either setting"
    )


if __name__ == "__main__":
    main()
