#!/usr/bin/env python
"""Non-IID robustness: FedMP under label-skewed data (Section V-F).

Partitions the synthetic MNIST stand-in with increasing label skew
(y% of each worker's samples share one label) and compares FedMP with
Syn-FL.  The run also enables the deadline-based fault tolerance of
Section V-A, so stragglers past 1.5x the 85th-percentile arrival are
discarded for the round.

    python examples/non_iid_robustness.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_synthetic_mnist
from repro.fl import FLConfig, run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation import make_scenario_devices

TARGET_ACCURACY = 0.85


def main() -> None:
    dataset = make_synthetic_mnist(train_per_class=80, test_per_class=20,
                                   rng=np.random.default_rng(0))
    devices = make_scenario_devices("medium", np.random.default_rng(9))

    print(f"target accuracy: {TARGET_ACCURACY:.0%}")
    print(f"{'non-IID level':<15}{'Syn-FL':>12}{'FedMP':>12}{'speedup':>10}")
    for level in (0, 40, 80):
        task = ClassificationTask(dataset, "cnn", non_iid_level=level)
        times = {}
        for strategy in ("synfl", "fedmp"):
            bandit_kwargs = {"max_ratio": 0.7, "exploration": 0.25} \
                if strategy == "fedmp" else {}
            config = FLConfig(
                strategy=strategy,
                strategy_kwargs=bandit_kwargs,
                max_rounds=20,
                local_iterations=3,
                batch_size=16,
                lr=0.05,
                eval_every=1,
                target_metric=TARGET_ACCURACY,
                deadline_quorum=0.85,
                deadline_multiplier=1.5,
                seed=2,
            )
            history = run_federated_training(task, devices, config)
            times[strategy] = history.time_to_target(TARGET_ACCURACY)
        syn, fed = times["synfl"], times["fedmp"]
        speedup = f"{syn / fed:.2f}x" if syn and fed else "--"
        fmt = lambda t: f"{t:.0f}s" if t is not None else "--"
        print(f"y={level:<13}{fmt(syn):>12}{fmt(fed):>12}{speedup:>10}")

    print(
        "\nhigher skew costs every method more rounds; pruning keeps "
        "shortening each round regardless of skew, so FedMP's per-round "
        "advantage persists (its convergence penalty grows with skew, "
        "matching the paper's shrinking-but-positive gains in Fig. 9)"
    )


if __name__ == "__main__":
    main()
