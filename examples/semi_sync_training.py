#!/usr/bin/env python
"""Semi-synchronous scheduling and sample-weighted aggregation.

Compares three synchronisation rules on the same high-heterogeneity
deployment with non-IID (hence unequally sized) shards:

- **sync**: barrier rounds -- every round waits for the slowest worker;
- **semi-sync**: each round aggregates whoever arrives within a fixed
  deadline and carries stragglers' dispatches over to a later round;
- **semi-sync + weighted**: same schedule, but contributions are
  weighted by local sample count (``sync_scheme="r2sp_weighted"``)
  instead of uniform ``1/N`` -- the unbiased average when the deadline
  makes participation partial round to round.

A :class:`~repro.fl.hooks.CommVolumeHook` reports how many parameters
each variant moved, without touching engine internals.

    python examples/semi_sync_training.py
"""

from __future__ import annotations

import numpy as np

from repro.data import make_synthetic_mnist
from repro.fl import CommVolumeHook, FLConfig, run_federated_training
from repro.fl.tasks import ClassificationTask
from repro.simulation import make_scenario_devices

DEADLINE_S = 6.0
ROUNDS = 14


def main() -> None:
    dataset = make_synthetic_mnist(train_per_class=80, test_per_class=20,
                                   rng=np.random.default_rng(0))
    # non-IID level 20 -> unequal shard sizes, so weighting matters
    task = ClassificationTask(dataset, "cnn", non_iid_level=20.0)
    devices = make_scenario_devices("high", np.random.default_rng(11))

    variants = [
        ("sync", dict()),
        ("semi-sync", dict(semi_sync_deadline_s=DEADLINE_S)),
        ("semi-sync weighted", dict(semi_sync_deadline_s=DEADLINE_S,
                                    sync_scheme="r2sp_weighted")),
    ]

    print(f"per-round deadline: {DEADLINE_S:.0f} simulated seconds\n")
    header = (f"{'variant':<20}{'final acc':>10}{'sim time':>10}"
              f"{'rounds':>8}{'params moved':>14}{'stragglers':>12}")
    print(header)
    for label, overrides in variants:
        comm = CommVolumeHook()
        config = FLConfig(
            strategy="fedmp",
            max_rounds=ROUNDS,
            local_iterations=3,
            batch_size=16,
            lr=0.05,
            eval_every=2,
            seed=4,
            strategy_kwargs={"warmup_rounds": 1},
            **overrides,
        )
        history = run_federated_training(task, devices, config,
                                         hooks=[comm])
        carried = sum(len(r.carried_over) for r in history.rounds)
        print(f"{label:<20}"
              f"{history.final_metric():>10.3f}"
              f"{history.total_time_s:>9.0f}s"
              f"{len(history.rounds):>8}"
              f"{comm.total_params / 1e6:>12.1f}M"
              f"{carried:>12}")

    print(
        "\nsemi-sync rounds are deadline-bounded instead of "
        "slowest-worker-bounded; sample weighting keeps the aggregate "
        "unbiased when the deadline makes participation partial"
    )


if __name__ == "__main__":
    main()
